"""The dynamic diversification engine.

:class:`DynamicDiversifier` owns a *mutable* instance — a weight vector
(modular quality) over growable storage and a
:class:`~repro.metrics.matrix.GrowableDistanceMatrix` — together with a
current solution of fixed cardinality ``p``.  Changes arrive either as
single :mod:`~repro.dynamic.perturbation` objects (:meth:`apply`, the
paper's Section 6 interface) or as whole
:class:`~repro.dynamic.events.EventBatch` ticks (:meth:`apply_events`);
both run through one code path, so the batched engine reproduces the
sequential one exactly on single-event ticks.

Per tick the engine

1. applies all weight/distance events in a few vectorized passes (with
   rollback on invalid events),
2. hosts insertions and deletions on the growable storage, refilling the
   solution greedily when a member is deleted,
3. computes the Theorem 4 multi-update schedule **once** from the
   aggregate weight decrease on solution members, and
4. repairs the solution.  Repair first tries a *no-swap certificate*
   maintained from the last full scan: per-outgoing upper bounds on the
   best incoming swap gain, shifted by the tick's member weight/margin
   deltas, plus exact gains for the (few) dirty incoming elements.  Only
   when some bound comes near zero does the engine fall back to the full
   vectorized best-swap scan — which is arithmetically identical to the
   legacy update rule, so results never depend on the certificate.

The engine can also report the exact optimum (for small instances) so the
simulation of Section 7.3 can track the worst observed approximation ratio.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro._types import Element
from repro.core import kernels
from repro.core.checkpoint import (
    SNAPSHOT_FORMAT_VERSION,
    check_snapshot_version,
    universe_fingerprint,
)
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.dynamic.events import EventBatch
from repro.dynamic.perturbation import Perturbation
from repro.dynamic.update_rules import (
    UpdateOutcome,
    required_updates_for_weight_decrease,
)
from repro.exceptions import InvalidParameterError, PerturbationError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix, GrowableDistanceMatrix
from repro.metrics.validation import pair_triangle_violations
from repro.obs.instrument import TICK_CERTIFICATES, maybe_span

#: Default bound on the diagnostic (perturbation, outcome) history.  Long
#: sessions at 10⁴+ events/sec would otherwise grow it without limit; pass
#: ``history_limit=None`` for the old unbounded behaviour.
DEFAULT_HISTORY_LIMIT = 1024

#: A swap-gain upper bound must be at least this far below zero for the
#: no-swap certificate to fire; anything closer falls back to the exact
#: full scan, so certificate floating-point noise can never change a result.
_CERTIFICATE_TOLERANCE = 1e-9

#: Negative weights/distances within this tolerance are treated as rounding
#: noise and clamped to zero (matching the sequential engine).
_NEGATIVITY_TOLERANCE = 1e-12


@dataclass(frozen=True)
class EngineSnapshot:
    """A pickle-safe snapshot of a :class:`DynamicDiversifier`.

    Captures the *instance* (weights, distances, λ, p) and the maintained
    solution as plain arrays/tuples — no live views, locks or oracles — so a
    long-running dynamic session can be persisted across process boundaries
    and restored with :meth:`DynamicDiversifier.restore`.  ``active`` lists
    the live slot ids when the engine has hosted deletions (``None`` means
    every slot is live, which keeps old pickles loadable).  The perturbation
    history is deliberately not captured: it is diagnostic, bounded, and the
    restored engine starts a fresh one (``applied_perturbations`` records
    how many events the snapshot had seen).  ``format_version`` and
    ``fingerprint`` support the durability layer's compatibility checks;
    both default so pre-versioning pickles still load.
    """

    weights: np.ndarray
    distances: np.ndarray
    p: int
    tradeoff: float
    solution: Tuple[Element, ...]
    validate_metric: bool = False
    applied_perturbations: int = 0
    active: Optional[Tuple[Element, ...]] = None
    format_version: int = SNAPSHOT_FORMAT_VERSION
    fingerprint: Optional[str] = None

    def save(self, path: str) -> None:
        """Pickle the snapshot to ``path``."""
        from repro.core.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @staticmethod
    def load(path: str) -> "EngineSnapshot":
        """Load a snapshot previously written by :meth:`save`."""
        from repro.core.checkpoint import load_checkpoint

        return load_checkpoint(path, EngineSnapshot)


class DynamicDiversifier:
    """Maintain a max-sum diversification solution under an event stream.

    Parameters
    ----------
    weights:
        Initial non-negative element weights (the modular quality function).
    distances:
        Initial metric distance matrix; the engine takes ownership of a copy
        inside growable storage.
    p:
        Cardinality of the maintained solution.
    tradeoff:
        The trade-off λ.
    initial_solution:
        Optional starting solution; by default the engine seeds itself with
        Greedy B (a 2-approximation, satisfying Corollary 4's precondition).
    validate_metric:
        When ``True``, every distance event is checked to preserve the
        triangle inequality and the tick is rejected otherwise.  The check
        is the O(n)-per-pair two-affected-rows scan
        (:func:`~repro.metrics.validation.pair_triangle_violations`), which
        is exhaustive given a valid pre-state.
    history_limit:
        Bound on the diagnostic history deque (``None`` = unbounded).
    use_certificate:
        When ``False``, the no-swap certificate is disabled and every repair
        runs the full best-swap scan — the legacy per-event cost model.
        Results are identical either way (the certificate only ever skips
        scans it can prove would find nothing); the flag exists for
        benchmarks and equivalence tests.
    """

    #: Optional :class:`~repro.obs.trace.Trace` receiving repair spans.  A
    #: class attribute (not set in ``__init__``) so ``__new__``-based restore
    #: paths — and snapshots written before the attribute existed — inherit
    #: ``None`` without pickling concerns.
    trace = None

    def __init__(
        self,
        weights: Iterable[float] | np.ndarray,
        distances: np.ndarray | DistanceMatrix,
        p: int,
        *,
        tradeoff: float = 1.0,
        initial_solution: Optional[Iterable[Element]] = None,
        validate_metric: bool = False,
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
        use_certificate: bool = True,
    ) -> None:
        # One validation path for the weights (finite, non-negative, 1-D),
        # then the array is adopted into engine-owned growable storage.
        validated = ModularFunction(np.asarray(weights, dtype=float))
        if isinstance(distances, GrowableDistanceMatrix):
            self._distances = distances.copy()
        elif isinstance(distances, DistanceMatrix):
            self._distances = GrowableDistanceMatrix(distances.matrix_view(), copy=True)
        else:
            self._distances = GrowableDistanceMatrix(
                np.asarray(distances, dtype=float)
            )
        if validated.n != self._distances.n:
            raise InvalidParameterError(
                "weights and distances cover different universes"
            )
        if p < 1 or p > validated.n:
            raise InvalidParameterError(
                f"p must lie in [1, n]; got p={p} for n={validated.n}"
            )
        if history_limit is not None and history_limit < 1:
            raise InvalidParameterError("history_limit must be positive or None")
        self._weight_store = np.zeros(self._distances.capacity)
        self._weight_store[: validated.n] = validated.weights_view()
        self._weights = ModularFunction._from_storage(
            self._weight_store[: self._distances.n]
        )
        self._p = int(p)
        self._tradeoff = float(tradeoff)
        self._validate_metric = bool(validate_metric)
        self._history: Deque[Tuple[Union[Perturbation, EventBatch], UpdateOutcome]] = (
            deque(maxlen=history_limit)
        )
        self._applied = 0
        self._margins = np.zeros(self._distances.n)
        # No-swap certificate state (valid only between ticks that did not
        # change the solution): per-member upper bounds on the best incoming
        # swap gain, from the last full scan.
        self._use_certificate = bool(use_certificate)
        self._cache_valid = False
        self._cache_inside: Optional[np.ndarray] = None
        self._cache_colmax: Optional[np.ndarray] = None

        if initial_solution is None:
            seed = greedy_diversify(self.objective, self._p)
            self._solution = set(seed.selected)
        else:
            members = set(initial_solution)
            if len(members) != self._p:
                raise InvalidParameterError(
                    f"initial solution must have exactly p={self._p} elements"
                )
            self._solution = members
        self._margins = kernels.set_margins(
            self._distances.matrix_view(), sorted(self._solution)
        )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Slot count of the universe (live plus retired slots)."""
        return self._distances.n

    @property
    def num_slots(self) -> int:
        """Alias of :attr:`n` emphasising that retired slots are counted."""
        return self._distances.n

    @property
    def active_count(self) -> int:
        """Number of live elements."""
        return self._distances.active_count

    def active_elements(self) -> np.ndarray:
        """Sorted ids of the live elements."""
        return self._distances.active_ids()

    @property
    def p(self) -> int:
        """Cardinality of the maintained solution."""
        return self._p

    @property
    def tradeoff(self) -> float:
        """The trade-off λ."""
        return self._tradeoff

    @property
    def objective(self) -> Objective:
        """The *current* objective (reflects all applied events)."""
        return Objective(self._weights, self._distances, self._tradeoff)

    @property
    def solution(self) -> FrozenSet[Element]:
        """The currently maintained solution."""
        return frozenset(self._solution)

    @property
    def solution_value(self) -> float:
        """``φ`` of the current solution under the current instance."""
        return self.objective.value(self._solution)

    @property
    def history(
        self,
    ) -> Tuple[Tuple[Union[Perturbation, EventBatch], UpdateOutcome], ...]:
        """The most recent (change, update outcome) pairs (bounded deque)."""
        return tuple(self._history)

    @property
    def history_limit(self) -> Optional[int]:
        """Bound on the history deque, or ``None`` when unbounded."""
        return self._history.maxlen

    @property
    def applied_events(self) -> int:
        """Total number of events applied over the engine's lifetime."""
        return self._applied

    def weight(self, element: Element) -> float:
        """Current weight of ``element``."""
        return float(self._weight_store[element])

    def distance(self, u: Element, v: Element) -> float:
        """Current distance ``d(u, v)``."""
        return self._distances.distance(u, v)

    # ------------------------------------------------------------------
    # Storage synchronisation
    # ------------------------------------------------------------------
    def _sync_storage(self) -> None:
        """Re-align the weight buffer, quality wrapper and margins with the
        matrix's slot count after growth."""
        capacity = self._distances.capacity
        if self._weight_store.shape[0] != capacity:
            store = np.zeros(capacity)
            store[: self._weight_store.shape[0]] = self._weight_store
            self._weight_store = store
            self._weights = ModularFunction._from_storage(store[: self._distances.n])
        elif self._weights.n != self._distances.n:
            self._weights = ModularFunction._from_storage(
                self._weight_store[: self._distances.n]
            )
        if self._margins.shape[0] < self._distances.n:
            self._margins = np.concatenate(
                [self._margins, np.zeros(self._distances.n - self._margins.shape[0])]
            )

    def _member_mask(self) -> np.ndarray:
        mask = np.zeros(self._distances.n, dtype=bool)
        if self._solution:
            mask[np.fromiter(self._solution, dtype=int)] = True
        return mask

    def _check_live(self, elements: np.ndarray, what: str) -> None:
        idx = np.asarray(elements, dtype=int)
        if idx.size == 0:
            return
        slots = self._distances.n
        if np.any((idx < 0) | (idx >= slots)) or not np.all(
            self._distances.active_mask[idx]
        ):
            raise PerturbationError(f"{what} refers to an unknown or retired element")

    @staticmethod
    def _run_undo(undo: List[Callable[[], None]]) -> None:
        for op in reversed(undo):
            op()

    def _set_cache(self, inside: np.ndarray, colmax: np.ndarray) -> None:
        if not self._use_certificate:
            return
        self._cache_inside = inside
        self._cache_colmax = np.asarray(colmax, dtype=float)
        self._cache_valid = True

    # ------------------------------------------------------------------
    # The batched tick
    # ------------------------------------------------------------------
    def _validate_batch(self, batch: EventBatch) -> None:
        """All statically checkable rejections, before any mutation."""
        slots = self._distances.n
        self._check_live(batch.weight_set_elements, "weight event")
        self._check_live(batch.weight_delta_elements, "weight event")
        self._check_live(batch.distance_set_pairs.ravel(), "distance event")
        self._check_live(batch.distance_delta_pairs.ravel(), "distance event")
        if batch.num_inserts:
            if batch.insert_points is not None:
                raise PerturbationError(
                    "this engine hosts explicit distance rows; point inserts "
                    "belong to the sharded dynamic session"
                )
            if len(batch.insert_distances) != batch.num_inserts:
                raise PerturbationError(
                    "every insert into the dense engine needs a distance row"
                )
            for i, row in enumerate(batch.insert_distances):
                if row.shape[0] != slots + i:
                    raise PerturbationError(
                        f"insert {i} needs a distance row of length {slots + i} "
                        f"(tick-start slots plus earlier inserts), got {row.shape[0]}"
                    )
                if not np.all(np.isfinite(row)):
                    raise PerturbationError("insert distances must be finite")
                if np.any(row < 0):
                    raise PerturbationError("insert distances must be non-negative")
        deletes = batch.delete_elements
        if deletes.size:
            if np.unique(deletes).size != deletes.size:
                raise PerturbationError("duplicate delete of the same element")
            self._check_live(deletes, "delete event")
            remaining = self.active_count + batch.num_inserts - deletes.size
            if remaining < self._p:
                raise PerturbationError(
                    f"deletions would leave {remaining} live elements, "
                    f"fewer than p={self._p}"
                )

    def _apply_weight_events(
        self, batch: EventBatch, undo: List[Callable[[], None]]
    ) -> None:
        idx_all = np.concatenate(
            [batch.weight_set_elements, batch.weight_delta_elements]
        )
        if idx_all.size == 0:
            return
        store = self._weight_store
        before = store[idx_all].copy()

        def rollback() -> None:
            store[idx_all] = before

        store[batch.weight_set_elements] = batch.weight_set_values
        np.add.at(store, batch.weight_delta_elements, batch.weight_deltas)
        touched = np.unique(idx_all)
        finals = store[touched]
        if np.any(finals < -_NEGATIVITY_TOLERANCE) or not np.all(np.isfinite(finals)):
            rollback()
            self._run_undo(undo)
            raise PerturbationError(
                "a weight decrease exceeds the current weight of its element"
            )
        store[touched] = np.maximum(finals, 0.0)
        undo.append(rollback)

    def _apply_distance_events(
        self, batch: EventBatch, undo: List[Callable[[], None]]
    ) -> None:
        pairs = np.concatenate(
            [batch.distance_set_pairs, batch.distance_delta_pairs], axis=0
        )
        if pairs.shape[0] == 0:
            return
        slots = self._distances.n
        keys = pairs[:, 0] * slots + pairs[:, 1]
        ukeys, inverse = np.unique(keys, return_inverse=True)
        urows = (ukeys // slots).astype(int)
        ucols = (ukeys % slots).astype(int)
        before = self._distances.array[urows, ucols].copy()
        finals = before.copy()
        num_sets = batch.distance_set_pairs.shape[0]
        finals[inverse[:num_sets]] = batch.distance_set_values
        np.add.at(finals, inverse[num_sets:], batch.distance_deltas)
        if np.any(finals < -_NEGATIVITY_TOLERANCE) or not np.all(np.isfinite(finals)):
            self._run_undo(undo)
            raise PerturbationError(
                "a distance decrease would make the distance negative"
            )
        finals = np.maximum(finals, 0.0)
        deltas = finals - before
        member_mask = self._member_mask()
        self._distances.set_distances(urows, ucols, finals)
        np.add.at(self._margins, urows, deltas * member_mask[ucols])
        np.add.at(self._margins, ucols, deltas * member_mask[urows])

        def rollback() -> None:
            self._distances.set_distances(urows, ucols, before)
            np.add.at(self._margins, urows, -deltas * member_mask[ucols])
            np.add.at(self._margins, ucols, -deltas * member_mask[urows])

        undo.append(rollback)
        if self._validate_metric:
            live = self.active_elements()
            for r, c in zip(urows.tolist(), ucols.tolist()):
                if pair_triangle_violations(
                    self._distances, r, c, elements=live, max_violations=1
                ):
                    self._run_undo(undo)
                    raise PerturbationError(
                        "distance perturbation violates the triangle inequality"
                    )

    def _apply_inserts(self, batch: EventBatch, members: np.ndarray) -> List[int]:
        inserted: List[int] = []
        if batch.num_inserts == 0:
            return inserted
        slots_start = self._distances.n
        for i in range(batch.num_inserts):
            row = batch.insert_distances[i]
            full = np.zeros(self._distances.n)
            full[:slots_start] = row[:slots_start]
            for j, sid in enumerate(inserted):
                full[sid] = row[slots_start + j]
            slot = self._distances.insert(full)
            self._sync_storage()
            self._weight_store[slot] = batch.insert_weights[i]
            self._margins[slot] = (
                float(self._distances.array[slot, members].sum())
                if members.size
                else 0.0
            )
            inserted.append(slot)
        return inserted

    def _apply_deletes(self, batch: EventBatch) -> List[int]:
        deleted_members: List[int] = []
        if batch.delete_elements.size == 0:
            return deleted_members
        del_idx = batch.delete_elements
        self._distances.deactivate(del_idx)
        self._weight_store[del_idx] = 0.0
        self._margins[del_idx] = 0.0
        for element in del_idx.tolist():
            if element in self._solution:
                self._solution.discard(element)
                deleted_members.append(element)
        if deleted_members:
            self._cache_valid = False
            self._margins = kernels.set_margins(
                self._distances.matrix_view(), sorted(self._solution)
            )
        return deleted_members

    def _refill(self) -> List[Tuple[int, float]]:
        """Greedy true-marginal refills until ``|S| == p`` again."""
        refills: List[Tuple[int, float]] = []
        while len(self._solution) < self._p:
            self._cache_valid = False
            live = self.active_elements()
            candidates = live[
                ~np.isin(live, np.fromiter(self._solution, dtype=int))
            ] if self._solution else live
            pick = kernels.best_addition_scan(
                self._weight_store[: self._distances.n],
                self._tradeoff,
                self._margins,
                candidates,
            )
            if pick is None:  # pragma: no cover - excluded by _validate_batch
                raise PerturbationError("no live element left to refill the solution")
            element, marginal = pick
            self._solution.add(element)
            self._margins = self._margins + self._distances.array[:, element]
            refills.append((element, marginal))
        return refills

    def _planned_updates(
        self,
        batch: EventBatch,
        updates: Optional[int],
        auto_schedule: bool,
        value_before: float,
        members0: np.ndarray,
        w_members0: np.ndarray,
    ) -> int:
        if updates is not None:
            return int(updates)
        if not auto_schedule:
            return 1
        # Theorem 4, computed once per tick from the *aggregate* weight
        # decrease suffered by tick-start solution members (deleted members
        # are excluded: deletion is handled by the forced refill, not the
        # weight-decrease schedule).
        if members0.size:
            alive = self._distances.active_mask[members0]
            decrease = float(
                np.maximum(w_members0 - self._weight_store[members0], 0.0)[alive].sum()
            )
        else:
            decrease = 0.0
        if decrease > 0 and value_before > decrease:
            return required_updates_for_weight_decrease(
                value_before, decrease, self._p
            )
        return 1

    def _dirty_incoming(self, batch: EventBatch, inserted: List[int]) -> np.ndarray:
        parts = [np.asarray(batch.touched_elements(), dtype=int)]
        if inserted:
            parts.append(np.asarray(inserted, dtype=int))
        dirty = np.unique(np.concatenate(parts)) if parts else np.zeros(0, dtype=int)
        if dirty.size == 0:
            return dirty
        dirty = dirty[(dirty >= 0) & (dirty < self._distances.n)]
        keep = self._distances.active_mask[dirty] & ~self._member_mask()[dirty]
        return dirty[keep]

    def _repair(
        self,
        planned: int,
        dirty: np.ndarray,
        members0: np.ndarray,
        w_members0: np.ndarray,
        cert_margins0: Optional[np.ndarray],
        batch_empty: bool,
    ) -> Tuple[List[Tuple[Element, Element, float]], bool]:
        slots = self._distances.n
        weights = self._weight_store[:slots]
        matrix = self._distances.matrix_view()
        swaps: List[Tuple[Element, Element, float]] = []
        certified = False
        if planned == 0:
            if not batch_empty:
                self._cache_valid = False
            return swaps, certified
        first = True
        while len(swaps) < planned:
            if first and self._cache_valid and cert_margins0 is not None:
                first = False
                inside = self._cache_inside
                if inside is None or not np.array_equal(inside, members0):
                    self._cache_valid = False
                    continue
                # Clean incoming gains against member s all shifted by
                # Δ_s = −Δw_s − λ·Δd_s(S) since the cache was stamped.
                shift = -(self._weight_store[inside] - w_members0) - self._tradeoff * (
                    self._margins[inside] - cert_margins0
                )
                shifted = self._cache_colmax + shift
                best_bound = float(shifted.max()) if shifted.size else -np.inf
                dirty_col: Optional[np.ndarray] = None
                if dirty.size and inside.size:
                    dirty_gains = kernels.swap_gain_matrix(
                        weights, matrix, self._tradeoff, self._margins, dirty, inside
                    )
                    dirty_col = dirty_gains.max(axis=0)
                    best_bound = max(best_bound, float(dirty_col.max()))
                if best_bound <= -_CERTIFICATE_TOLERANCE:
                    self._set_cache(
                        inside,
                        np.maximum(shifted, dirty_col)
                        if dirty_col is not None
                        else shifted,
                    )
                    certified = True
                    break
                self._cache_valid = False
                continue
            first = False
            inside, outside = kernels.solution_split(slots, self._solution)
            margins = kernels.set_margins(matrix, inside)
            self._margins = margins
            if outside.size == 0 or inside.size == 0:
                self._set_cache(inside, np.full(inside.size, -np.inf))
                break
            gains = kernels.swap_gain_matrix(
                weights, matrix, self._tradeoff, margins, outside, inside
            )
            move = kernels.best_swap_scan_from_gains(gains, outside, inside)
            if move is None:
                self._set_cache(inside, gains.max(axis=0))
                break
            incoming, outgoing, gain = move
            self._solution.discard(outgoing)
            self._solution.add(incoming)
            self._margins = margins + matrix[:, incoming] - matrix[:, outgoing]
            self._cache_valid = False
            swaps.append((incoming, outgoing, gain))
        return swaps, certified

    def _tick(
        self,
        batch: EventBatch,
        *,
        updates: Optional[int],
        auto_schedule: bool,
    ) -> UpdateOutcome:
        if updates is not None and updates < 0:
            raise InvalidParameterError("updates must be non-negative")
        self._validate_batch(batch)
        value_before = self.objective.value(self._solution)
        members0 = np.fromiter(sorted(self._solution), dtype=int)
        w_members0 = self._weight_store[members0].copy()
        cert_margins0 = self._margins[members0].copy() if self._cache_valid else None

        undo: List[Callable[[], None]] = []
        self._apply_weight_events(batch, undo)
        self._apply_distance_events(batch, undo)
        inserted = self._apply_inserts(batch, members0)
        deleted_members = self._apply_deletes(batch)
        refills = self._refill()

        planned = self._planned_updates(
            batch, updates, auto_schedule, value_before, members0, w_members0
        )
        dirty = self._dirty_incoming(batch, inserted)
        with maybe_span(self.trace, "repair", planned=planned) as repair_span:
            swaps, certified = self._repair(
                planned, dirty, members0, w_members0, cert_margins0, batch.is_empty
            )
            repair_span.set(
                certificate="hit" if certified else "miss", swaps=len(swaps)
            )
        if TICK_CERTIFICATES.enabled():
            TICK_CERTIFICATES.inc(outcome="hit" if certified else "miss")

        metadata = {
            "planned_updates": planned,
            "certified_stable": certified,
            "num_events": batch.num_events,
        }
        if inserted:
            metadata["inserted"] = tuple(inserted)
        if deleted_members:
            metadata["deleted_members"] = tuple(deleted_members)
        if refills:
            metadata["refills"] = tuple(refills)
        return UpdateOutcome(
            solution=frozenset(self._solution),
            swaps=tuple(swaps),
            objective_value=self.objective.value(self._solution),
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Public application interfaces
    # ------------------------------------------------------------------
    def apply_events(
        self,
        batch: EventBatch,
        *,
        updates: Optional[int] = None,
        auto_schedule: bool = True,
    ) -> UpdateOutcome:
        """Apply one tick of batched events, then repair the solution.

        Parameters
        ----------
        batch:
            The tick's events (see :class:`~repro.dynamic.events.EventBatch`
            for the within-tick resolution order).
        updates:
            Explicit number of single-swap updates to allow.  ``None`` means:
            one update, except when the tick's aggregate weight decrease on
            solution members is large and ``auto_schedule`` holds, in which
            case Theorem 4's multi-update count is used.
        auto_schedule:
            Whether to apply Theorem 4's schedule automatically.
        """
        outcome = self._tick(batch, updates=updates, auto_schedule=auto_schedule)
        self._history.append((batch, outcome))
        self._applied += batch.num_events
        return outcome

    def apply(
        self,
        perturbation: Perturbation,
        *,
        updates: Optional[int] = None,
        auto_schedule: bool = True,
    ) -> UpdateOutcome:
        """Apply a single Section 6 perturbation (a one-event tick).

        This routes through the same code path as :meth:`apply_events`, and
        reproduces the sequential update rule exactly: the repair phase
        either *certifies* that no improving swap exists or runs the same
        vectorized full scan the legacy rule runs.
        """
        batch = EventBatch.from_perturbations([perturbation])
        outcome = self._tick(batch, updates=updates, auto_schedule=auto_schedule)
        self._history.append((perturbation, outcome))
        self._applied += 1
        return outcome

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _active_restriction(self):
        return self.objective.restrict(self.active_elements())

    def optimal_value(self) -> float:
        """Exact optimum of the *current* instance (exponential; small n only)."""
        if self.active_count == self.n:
            return exact_diversify(self.objective, self._p).objective_value
        restriction = self._active_restriction()
        return exact_diversify(restriction.objective, self._p).objective_value

    def approximation_ratio(self) -> float:
        """``OPT / φ(S)`` for the current instance and solution (small n only)."""
        value = self.solution_value
        optimum = self.optimal_value()
        if value <= 1e-12:
            return 1.0 if optimum <= 1e-12 else float("inf")
        return optimum / value

    def rebuild(self) -> FrozenSet[Element]:
        """Recompute the solution from scratch with Greedy B (a full rebuild)."""
        if self.active_count == self.n:
            result = greedy_diversify(self.objective, self._p)
        else:
            result = greedy_diversify(
                self.objective, self._p, candidates=self.active_elements()
            )
        self._solution = set(result.selected)
        self._cache_valid = False
        self._margins = kernels.set_margins(
            self._distances.matrix_view(), sorted(self._solution)
        )
        return frozenset(self._solution)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Capture the current instance and solution as an :class:`EngineSnapshot`.

        The snapshot owns copies of the weight vector and distance matrix
        (over the full slot range, with ``active`` recording live ids), so
        later events on this engine do not leak into it (and vice versa).
        It pickles cleanly — use it to persist a dynamic session to disk or
        ship it across processes.
        """
        return EngineSnapshot(
            weights=np.array(self._weight_store[: self._distances.n], copy=True),
            distances=np.array(self._distances.matrix_view(), copy=True),
            p=self._p,
            tradeoff=self._tradeoff,
            solution=tuple(sorted(self._solution)),
            validate_metric=self._validate_metric,
            applied_perturbations=self._applied,
            active=tuple(int(e) for e in self.active_elements()),
            fingerprint=universe_fingerprint(
                "dense", self._p, self._tradeoff, self._distances.n
            ),
        )

    @classmethod
    def restore(cls, snapshot: EngineSnapshot) -> "DynamicDiversifier":
        """Rebuild an engine from a :meth:`snapshot`.

        The restored engine carries the snapshot's instance, live-slot
        layout and solution, and an empty history; applying the same event
        stream to the original and the restored engine from the snapshot
        point onward yields identical solutions (the update rule is
        deterministic).
        """
        if not isinstance(snapshot, EngineSnapshot):
            raise InvalidParameterError(
                f"restore expects an EngineSnapshot, got {type(snapshot).__name__}"
            )
        check_snapshot_version(snapshot, source="EngineSnapshot")
        engine = cls(
            snapshot.weights,
            snapshot.distances,
            snapshot.p,
            tradeoff=snapshot.tradeoff,
            initial_solution=snapshot.solution,
            validate_metric=snapshot.validate_metric,
        )
        if snapshot.active is not None:
            retired = sorted(set(range(engine.n)) - set(snapshot.active))
            if retired:
                engine._distances.deactivate(retired)
                engine._weight_store[retired] = 0.0
        engine._applied = snapshot.applied_perturbations
        return engine
