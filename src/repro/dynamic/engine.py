"""The dynamic diversification engine.

:class:`DynamicDiversifier` owns a *mutable* instance — a weight vector
(modular quality) and a distance matrix — together with a current solution of
fixed cardinality ``p``.  It applies :mod:`~repro.dynamic.perturbation`
objects, then runs the oblivious single-swap update rule, optionally the
multi-update schedule Theorem 4 prescribes for large weight decreases.

The engine can also report the exact optimum (for small instances) so the
simulation of Section 7.3 can track the worst observed approximation ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    Perturbation,
    WeightDecrease,
    WeightIncrease,
)
from repro.dynamic.update_rules import (
    UpdateOutcome,
    oblivious_update,
    required_updates_for_weight_decrease,
    update_until_stable,
)
from repro.exceptions import InvalidParameterError, PerturbationError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix
from repro.metrics.validation import triangle_violations


@dataclass(frozen=True)
class EngineSnapshot:
    """A pickle-safe snapshot of a :class:`DynamicDiversifier`.

    Captures the *instance* (weights, distances, λ, p) and the maintained
    solution as plain arrays/tuples — no live views, locks or oracles — so a
    long-running dynamic session can be persisted across process boundaries
    and restored with :meth:`DynamicDiversifier.restore`.  The perturbation
    history is deliberately not captured: it is diagnostic, unbounded, and
    the restored engine starts a fresh one (``applied_perturbations`` records
    how many the snapshot had seen).
    """

    weights: np.ndarray
    distances: np.ndarray
    p: int
    tradeoff: float
    solution: Tuple[Element, ...]
    validate_metric: bool = False
    applied_perturbations: int = 0


class DynamicDiversifier:
    """Maintain a max-sum diversification solution under a perturbation stream.

    Parameters
    ----------
    weights:
        Initial non-negative element weights (the modular quality function).
    distances:
        Initial metric distance matrix; the engine takes ownership of a copy.
    p:
        Cardinality of the maintained solution.
    tradeoff:
        The trade-off λ.
    initial_solution:
        Optional starting solution; by default the engine seeds itself with
        Greedy B (a 2-approximation, satisfying Corollary 4's precondition).
    validate_metric:
        When ``True``, every distance perturbation is checked to preserve the
        triangle inequality (O(n^2) per check) and rejected otherwise.
    """

    def __init__(
        self,
        weights: Iterable[float] | np.ndarray,
        distances: np.ndarray | DistanceMatrix,
        p: int,
        *,
        tradeoff: float = 1.0,
        initial_solution: Optional[Iterable[Element]] = None,
        validate_metric: bool = False,
    ) -> None:
        # One coercion path for both inputs.  The engine owns independent
        # copies: ModularFunction and DistanceMatrix both copy their input
        # array, so later external mutation of `weights`/`distances` cannot
        # leak into engine state (and engine perturbations cannot leak out).
        self._weights = ModularFunction(np.asarray(weights, dtype=float))
        if isinstance(distances, DistanceMatrix):
            self._distances = distances.copy()
        else:
            self._distances = DistanceMatrix(np.asarray(distances, dtype=float))
        if self._weights.n != self._distances.n:
            raise InvalidParameterError("weights and distances cover different universes")
        if p < 1 or p > self._weights.n:
            raise InvalidParameterError(
                f"p must lie in [1, n]; got p={p} for n={self._weights.n}"
            )
        self._p = int(p)
        self._tradeoff = float(tradeoff)
        self._validate_metric = bool(validate_metric)
        self._history: List[Tuple[Perturbation, UpdateOutcome]] = []

        if initial_solution is None:
            seed = greedy_diversify(self.objective, self._p)
            self._solution = set(seed.selected)
        else:
            members = set(initial_solution)
            if len(members) != self._p:
                raise InvalidParameterError(
                    f"initial solution must have exactly p={self._p} elements"
                )
            self._solution = members

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Universe size."""
        return self._weights.n

    @property
    def p(self) -> int:
        """Cardinality of the maintained solution."""
        return self._p

    @property
    def tradeoff(self) -> float:
        """The trade-off λ."""
        return self._tradeoff

    @property
    def objective(self) -> Objective:
        """The *current* objective (reflects all applied perturbations)."""
        return Objective(self._weights, self._distances, self._tradeoff)

    @property
    def solution(self) -> FrozenSet[Element]:
        """The currently maintained solution."""
        return frozenset(self._solution)

    @property
    def solution_value(self) -> float:
        """``φ`` of the current solution under the current instance."""
        return self.objective.value(self._solution)

    @property
    def history(self) -> Tuple[Tuple[Perturbation, UpdateOutcome], ...]:
        """All (perturbation, update outcome) pairs applied so far."""
        return tuple(self._history)

    def weight(self, element: Element) -> float:
        """Current weight of ``element``."""
        return self._weights.weight(element)

    def distance(self, u: Element, v: Element) -> float:
        """Current distance ``d(u, v)``."""
        return self._distances.distance(u, v)

    # ------------------------------------------------------------------
    # Applying perturbations
    # ------------------------------------------------------------------
    def _apply_to_instance(self, perturbation: Perturbation) -> None:
        if isinstance(perturbation, WeightIncrease):
            current = self._weights.weight(perturbation.element)
            self._weights.set_weight(perturbation.element, current + perturbation.delta)
        elif isinstance(perturbation, WeightDecrease):
            current = self._weights.weight(perturbation.element)
            if perturbation.delta > current + 1e-12:
                raise PerturbationError(
                    f"weight decrease of {perturbation.delta} exceeds the current "
                    f"weight {current} of element {perturbation.element}"
                )
            self._weights.set_weight(
                perturbation.element, max(current - perturbation.delta, 0.0)
            )
        elif isinstance(perturbation, (DistanceIncrease, DistanceDecrease)):
            sign = 1.0 if isinstance(perturbation, DistanceIncrease) else -1.0
            current = self._distances.distance(perturbation.u, perturbation.v)
            new_value = current + sign * perturbation.delta
            if new_value < -1e-12:
                raise PerturbationError("distance decrease would make the distance negative")
            self._distances.set_distance(perturbation.u, perturbation.v, max(new_value, 0.0))
            if self._validate_metric and triangle_violations(
                self._distances, max_violations=1
            ):
                # Roll back and refuse: the paper assumes perturbations keep a metric.
                self._distances.set_distance(perturbation.u, perturbation.v, current)
                raise PerturbationError(
                    "distance perturbation violates the triangle inequality"
                )
        else:
            raise PerturbationError(f"unknown perturbation {perturbation!r}")

    def apply(
        self,
        perturbation: Perturbation,
        *,
        updates: Optional[int] = None,
        auto_schedule: bool = True,
    ) -> UpdateOutcome:
        """Apply a perturbation, then run the oblivious update rule.

        Parameters
        ----------
        perturbation:
            The change to apply.
        updates:
            Explicit number of single-swap updates to run.  ``None`` means:
            one update, except for large Type II decreases where the Theorem 4
            schedule is used when ``auto_schedule`` is ``True``.
        auto_schedule:
            Whether to use Theorem 4's multi-update count automatically.
        """
        planned: Optional[int]
        if updates is not None:
            if updates < 0:
                raise InvalidParameterError("updates must be non-negative")
            planned = updates
        elif auto_schedule and isinstance(perturbation, WeightDecrease):
            value_before = self.solution_value
            delta_effect = min(
                perturbation.delta,
                self._weights.weight(perturbation.element)
                if perturbation.element in self._solution
                else 0.0,
            )
            if delta_effect > 0 and value_before > delta_effect:
                planned = required_updates_for_weight_decrease(
                    value_before, delta_effect, self._p
                )
            else:
                planned = 1
        else:
            planned = 1

        self._apply_to_instance(perturbation)
        objective = self.objective
        if planned == 1:
            outcome = oblivious_update(objective, self._solution)
        else:
            outcome = update_until_stable(
                objective, self._solution, max_updates=planned
            )
        self._solution = set(outcome.solution)
        self._history.append((perturbation, outcome))
        return outcome

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def optimal_value(self) -> float:
        """Exact optimum of the *current* instance (exponential; small n only)."""
        return exact_diversify(self.objective, self._p).objective_value

    def approximation_ratio(self) -> float:
        """``OPT / φ(S)`` for the current instance and solution (small n only)."""
        value = self.solution_value
        optimum = self.optimal_value()
        if value <= 1e-12:
            return 1.0 if optimum <= 1e-12 else float("inf")
        return optimum / value

    def rebuild(self) -> FrozenSet[Element]:
        """Recompute the solution from scratch with Greedy B (a full rebuild)."""
        result = greedy_diversify(self.objective, self._p)
        self._solution = set(result.selected)
        return frozenset(self._solution)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Capture the current instance and solution as an :class:`EngineSnapshot`.

        The snapshot owns copies of the weight vector and distance matrix, so
        later perturbations of this engine do not leak into it (and vice
        versa).  It pickles cleanly — use it to persist a dynamic session to
        disk or ship it across processes.
        """
        return EngineSnapshot(
            weights=np.array(self._weights.weights_view(), copy=True),
            distances=np.array(self._distances.matrix_view(), copy=True),
            p=self._p,
            tradeoff=self._tradeoff,
            solution=tuple(sorted(self._solution)),
            validate_metric=self._validate_metric,
            applied_perturbations=len(self._history),
        )

    @classmethod
    def restore(cls, snapshot: EngineSnapshot) -> "DynamicDiversifier":
        """Rebuild an engine from a :meth:`snapshot`.

        The restored engine carries the snapshot's instance and solution and
        an empty history; applying the same perturbation stream to the
        original and the restored engine from the snapshot point onward
        yields identical solutions (the update rule is deterministic).
        """
        if not isinstance(snapshot, EngineSnapshot):
            raise InvalidParameterError(
                f"restore expects an EngineSnapshot, got {type(snapshot).__name__}"
            )
        return cls(
            snapshot.weights,
            snapshot.distances,
            snapshot.p,
            tradeoff=snapshot.tradeoff,
            initial_solution=snapshot.solution,
            validate_metric=snapshot.validate_metric,
        )
