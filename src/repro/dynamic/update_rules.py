"""The oblivious single-swap update rule (Section 6).

Given the current solution ``S``, find the pair ``(u, v)`` with ``u ∈ S``,
``v ∉ S`` maximizing the swap gain

``φ_{v→u}(S) = φ(S − u + v) − φ(S)``

and perform the swap iff the gain is positive.  The rule is *oblivious*
because it ignores which perturbation happened.

:func:`required_updates_for_weight_decrease` computes Theorem 4's bound
``⌈log_{(p-2)/(p-3)} w/(w-δ)⌉`` on the number of updates needed after a large
weight decrease.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro._types import Element
from repro.core import kernels
from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class UpdateOutcome:
    """Result of applying the oblivious update rule once (or repeatedly).

    Attributes
    ----------
    solution:
        The solution after the update(s).
    swaps:
        List of performed swaps ``(incoming, outgoing, gain)`` in order.
    objective_value:
        ``φ`` of the final solution.
    """

    solution: FrozenSet[Element]
    swaps: Tuple[Tuple[Element, Element, float], ...]
    objective_value: float

    @property
    def num_swaps(self) -> int:
        """Number of swaps performed."""
        return len(self.swaps)

    @property
    def changed(self) -> bool:
        """Whether any swap was performed."""
        return bool(self.swaps)


def best_swap(
    objective: Objective, solution: Set[Element]
) -> Optional[Tuple[Element, Element, float]]:
    """Return the best single swap ``(incoming, outgoing, gain)`` or ``None``.

    ``None`` is returned when no swap has a strictly positive gain, i.e. the
    solution is locally optimal for the single-swap neighbourhood.

    When the instance is matrix-backed with modular quality (the dynamic
    engine's representation), the scan is one vectorized gain-matrix argmax;
    otherwise it falls back to O(n·p) ``swap_gain`` oracle calls.
    """
    fast = kernels.matrix_fast_path(objective)
    if fast is not None and solution:
        weights, matrix = fast
        inside, outside = kernels.solution_split(objective.n, solution)
        margins = kernels.set_margins(matrix, inside)
        return kernels.best_swap_scan(
            weights, matrix, objective.tradeoff, margins, outside, inside
        )
    best: Optional[Tuple[Element, Element, float]] = None
    for incoming in range(objective.n):
        if incoming in solution:
            continue
        for outgoing in solution:
            gain = objective.swap_gain(solution, incoming, outgoing)
            if gain > 0 and (best is None or gain > best[2]):
                best = (incoming, outgoing, gain)
    return best


def oblivious_update(objective: Objective, solution: Set[Element]) -> UpdateOutcome:
    """Apply the oblivious single-swap update rule exactly once."""
    current = set(solution)
    move = best_swap(objective, current)
    swaps: List[Tuple[Element, Element, float]] = []
    if move is not None:
        incoming, outgoing, gain = move
        current.remove(outgoing)
        current.add(incoming)
        swaps.append((incoming, outgoing, gain))
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
    )


def update_until_stable(
    objective: Objective,
    solution: Set[Element],
    *,
    max_updates: Optional[int] = None,
) -> UpdateOutcome:
    """Apply the oblivious rule repeatedly until no swap improves (or a cap hits)."""
    if max_updates is not None and max_updates < 0:
        raise InvalidParameterError("max_updates must be non-negative")
    current = set(solution)
    swaps: List[Tuple[Element, Element, float]] = []
    while max_updates is None or len(swaps) < max_updates:
        move = best_swap(objective, current)
        if move is None:
            break
        incoming, outgoing, gain = move
        current.remove(outgoing)
        current.add(incoming)
        swaps.append((incoming, outgoing, gain))
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
    )


def best_k_swap(
    objective: Objective, solution: Set[Element], k: int
) -> Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]]:
    """Best simultaneous swap of exactly ``k`` elements, or ``None`` if none improves.

    The paper's conclusion asks whether larger-cardinality swaps (or a
    non-oblivious rule) can maintain a ratio better than 3 with few updates;
    this primitive supports experimenting with that question.  The search is
    exhaustive over ``C(|S|, k) · C(n − |S|, k)`` combinations, so it is only
    intended for small ``k`` (2 in practice).

    Returns ``(incoming, outgoing, gain)`` with ``gain > 0``, or ``None``.
    """
    from itertools import combinations

    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    members = sorted(solution)
    outside = [u for u in range(objective.n) if u not in solution]
    if len(members) < k or len(outside) < k:
        return None
    current_value = objective.value(solution)
    best: Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]] = None
    for outgoing in combinations(members, k):
        without = set(solution) - set(outgoing)
        for incoming in combinations(outside, k):
            candidate = without | set(incoming)
            gain = objective.value(candidate) - current_value
            if gain > 0 and (best is None or gain > best[2]):
                best = (tuple(incoming), tuple(outgoing), gain)
    return best


def k_swap_update(
    objective: Objective, solution: Set[Element], k: int = 2
) -> UpdateOutcome:
    """Apply the best swap of *up to* ``k`` elements exactly once.

    Tries swap sizes ``1 .. k`` and performs the single most improving one
    (sizes are not chained — this is one update, the analogue of the oblivious
    single-swap rule with a larger neighbourhood).
    """
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    current = set(solution)
    best_move: Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]] = None
    for size in range(1, k + 1):
        move = best_k_swap(objective, current, size)
        if move is not None and (best_move is None or move[2] > best_move[2]):
            best_move = move
    swaps: List[Tuple[Element, Element, float]] = []
    if best_move is not None:
        incoming, outgoing, gain = best_move
        for element in outgoing:
            current.remove(element)
        for element in incoming:
            current.add(element)
        # Record the move pairwise so the outcome shape matches the 1-swap rule.
        per_pair_gain = gain / len(incoming)
        swaps.extend(
            (inc, out, per_pair_gain) for inc, out in zip(incoming, outgoing)
        )
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
    )


def required_updates_for_weight_decrease(
    current_solution_value: float, delta: float, p: int
) -> int:
    """Theorem 4's update count ``⌈log_{(p-2)/(p-3)} w/(w-δ)⌉``.

    Parameters
    ----------
    current_solution_value:
        ``w`` — the value ``φ(S)`` of the solution before the weight decrease.
    delta:
        The magnitude of the decrease.
    p:
        The cardinality constraint.  For ``p ≤ 3`` (Corollary 3) a single
        update always suffices.

    Returns
    -------
    int
        The number of oblivious updates sufficient to restore ratio 3.
    """
    if delta < 0:
        raise InvalidParameterError("delta must be non-negative")
    if current_solution_value < 0:
        raise InvalidParameterError("the solution value must be non-negative")
    if delta == 0:
        return 0
    if p <= 3:
        return 1
    if delta <= current_solution_value / (p - 2):
        return 1
    if delta >= current_solution_value:
        # The whole solution value could be wiped out; the bound degenerates.
        raise InvalidParameterError(
            "Theorem 4 requires the decrease to be smaller than the solution value"
        )
    base = (p - 2) / (p - 3)
    ratio = current_solution_value / (current_solution_value - delta)
    return max(1, math.ceil(math.log(ratio, base)))
