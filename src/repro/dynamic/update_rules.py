"""The oblivious single-swap update rule (Section 6).

Given the current solution ``S``, find the pair ``(u, v)`` with ``u ∈ S``,
``v ∉ S`` maximizing the swap gain

``φ_{v→u}(S) = φ(S − u + v) − φ(S)``

and perform the swap iff the gain is positive.  The rule is *oblivious*
because it ignores which perturbation happened.

:func:`required_updates_for_weight_decrease` computes Theorem 4's bound
``⌈log_{(p-2)/(p-3)} w/(w-δ)⌉`` on the number of updates needed after a large
weight decrease.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._types import Element
from repro.core import kernels
from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class UpdateOutcome:
    """Result of applying the oblivious update rule once (or repeatedly).

    Attributes
    ----------
    solution:
        The solution after the update(s).
    swaps:
        The performed moves ``(incoming, outgoing, gain)`` in order, where
        ``gain`` is always the *true* objective change of that move.  For the
        single-swap rules ``incoming``/``outgoing`` are elements; for a
        simultaneous k-swap (:func:`k_swap_update` with ``k > 1``) they are
        tuples of elements and the entry records the gain of the whole move —
        a simultaneous swap has no well-defined per-pair gains.
    objective_value:
        ``φ`` of the final solution.
    metadata:
        Rule-specific extras (e.g. the labelled pairwise decomposition of a
        k-swap move).
    """

    solution: FrozenSet[Element]
    swaps: Tuple[Tuple[Any, Any, float], ...]
    objective_value: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_swaps(self) -> int:
        """Number of swaps performed."""
        return len(self.swaps)

    @property
    def changed(self) -> bool:
        """Whether any swap was performed."""
        return bool(self.swaps)


def best_swap(
    objective: Objective,
    solution: Set[Element],
    *,
    candidates: Optional[Iterable[Element]] = None,
) -> Optional[Tuple[Element, Element, float]]:
    """Return the best single swap ``(incoming, outgoing, gain)`` or ``None``.

    ``None`` is returned when no swap has a strictly positive gain, i.e. the
    solution is locally optimal for the single-swap neighbourhood.

    When the instance is matrix-backed with modular quality (the dynamic
    engine's representation), the scan is one vectorized gain-matrix argmax;
    otherwise it falls back to O(n·p) ``swap_gain`` oracle calls.

    ``candidates`` restricts the incoming elements to a query-scoped pool
    (through the restriction layer, so the vectorized scan runs on the
    re-indexed sub-instance); the current ``solution`` must lie inside the
    pool.
    """
    if candidates is not None:
        restriction = objective.restrict(candidates)
        local_solution = set(restriction.to_local(solution))
        move = best_swap(restriction.objective, local_solution)
        if move is None:
            return None
        incoming, outgoing, gain = move
        pool = restriction.candidates
        return pool[incoming], pool[outgoing], gain
    fast = kernels.matrix_fast_path(objective)
    if fast is not None and solution:
        weights, matrix = fast
        inside, outside = kernels.solution_split(objective.n, solution)
        margins = kernels.set_margins(matrix, inside)
        return kernels.best_swap_scan(
            weights, matrix, objective.tradeoff, margins, outside, inside
        )
    best: Optional[Tuple[Element, Element, float]] = None
    for incoming in range(objective.n):
        if incoming in solution:
            continue
        for outgoing in solution:
            gain = objective.swap_gain(solution, incoming, outgoing)
            if gain > 0 and (best is None or gain > best[2]):
                best = (incoming, outgoing, gain)
    return best


def oblivious_update(
    objective: Objective,
    solution: Set[Element],
    *,
    candidates: Optional[Iterable[Element]] = None,
) -> UpdateOutcome:
    """Apply the oblivious single-swap update rule exactly once.

    ``candidates`` restricts the incoming elements to a pool (see
    :func:`best_swap`).
    """
    current = set(solution)
    move = best_swap(objective, current, candidates=candidates)
    swaps: List[Tuple[Element, Element, float]] = []
    if move is not None:
        incoming, outgoing, gain = move
        current.remove(outgoing)
        current.add(incoming)
        swaps.append((incoming, outgoing, gain))
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
    )


def update_until_stable(
    objective: Objective,
    solution: Set[Element],
    *,
    max_updates: Optional[int] = None,
    candidates: Optional[Iterable[Element]] = None,
) -> UpdateOutcome:
    """Apply the oblivious rule repeatedly until no swap improves (or a cap hits).

    ``candidates`` restricts the incoming elements to a pool (see
    :func:`best_swap`).
    """
    if max_updates is not None and max_updates < 0:
        raise InvalidParameterError("max_updates must be non-negative")
    if candidates is not None:
        # Build the restriction once for the whole stabilization run, not
        # once per swap iteration (each build costs the O(k²) submatrix).
        restriction = objective.restrict(candidates)
        local = update_until_stable(
            restriction.objective,
            set(restriction.to_local(solution)),
            max_updates=max_updates,
        )
        pool = restriction.candidates
        return UpdateOutcome(
            solution=frozenset(pool[e] for e in local.solution),
            swaps=tuple(
                (pool[incoming], pool[outgoing], gain)
                for incoming, outgoing, gain in local.swaps
            ),
            objective_value=local.objective_value,
            metadata=local.metadata,
        )
    current = set(solution)
    swaps: List[Tuple[Element, Element, float]] = []
    while max_updates is None or len(swaps) < max_updates:
        move = best_swap(objective, current)
        if move is None:
            break
        incoming, outgoing, gain = move
        current.remove(outgoing)
        current.add(incoming)
        swaps.append((incoming, outgoing, gain))
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
    )


def best_k_swap(
    objective: Objective, solution: Set[Element], k: int
) -> Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]]:
    """Best simultaneous swap of exactly ``k`` elements, or ``None`` if none improves.

    The paper's conclusion asks whether larger-cardinality swaps (or a
    non-oblivious rule) can maintain a ratio better than 3 with few updates;
    this primitive supports experimenting with that question.  The search is
    exhaustive over ``C(|S|, k) · C(n − |S|, k)`` combinations, so it is only
    intended for small ``k`` (2 in practice).

    Returns ``(incoming, outgoing, gain)`` with ``gain > 0``, or ``None``.
    """
    from itertools import combinations

    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    members = sorted(solution)
    outside = [u for u in range(objective.n) if u not in solution]
    if len(members) < k or len(outside) < k:
        return None
    current_value = objective.value(solution)
    best: Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]] = None
    for outgoing in combinations(members, k):
        without = set(solution) - set(outgoing)
        for incoming in combinations(outside, k):
            candidate = without | set(incoming)
            gain = objective.value(candidate) - current_value
            if gain > 0 and (best is None or gain > best[2]):
                best = (tuple(incoming), tuple(outgoing), gain)
    return best


def k_swap_update(
    objective: Objective, solution: Set[Element], k: int = 2
) -> UpdateOutcome:
    """Apply the best swap of *up to* ``k`` elements exactly once.

    Tries swap sizes ``1 .. k`` and performs the single most improving one
    (sizes are not chained — this is one update, the analogue of the oblivious
    single-swap rule with a larger neighbourhood).

    The outcome records the move with its **true total gain**
    ``φ(S') − φ(S)``.  A move of size > 1 appears as a single
    ``(incoming_tuple, outgoing_tuple, gain)`` entry; the arbitrary pairwise
    alignment is kept only under ``metadata["pairwise_alignment"]`` and
    carries no gains, because a simultaneous swap has no per-pair gains.
    """
    if k < 1:
        raise InvalidParameterError("k must be at least 1")
    current = set(solution)
    best_move: Optional[Tuple[Tuple[Element, ...], Tuple[Element, ...], float]] = None
    for size in range(1, k + 1):
        move = best_k_swap(objective, current, size)
        if move is not None and (best_move is None or move[2] > best_move[2]):
            best_move = move
    swaps: List[Tuple[Any, Any, float]] = []
    metadata: Dict[str, Any] = {}
    if best_move is not None:
        incoming, outgoing, gain = best_move
        for element in outgoing:
            current.remove(element)
        for element in incoming:
            current.add(element)
        if len(incoming) == 1:
            # A 1-swap is a genuine single swap; keep the 1-swap rule's shape.
            swaps.append((incoming[0], outgoing[0], gain))
        else:
            # A simultaneous k-swap is ONE move with ONE true gain.  The
            # element alignment below is an arbitrary zip, not a gain
            # decomposition — per-pair gains are not defined for a
            # simultaneous swap, so none are fabricated.
            swaps.append((incoming, outgoing, gain))
            metadata["pairwise_alignment"] = tuple(zip(incoming, outgoing))
            metadata["pairwise_alignment_note"] = (
                "arbitrary incoming/outgoing pairing of the simultaneous "
                "k-swap; carries no per-pair gains"
            )
    return UpdateOutcome(
        solution=frozenset(current),
        swaps=tuple(swaps),
        objective_value=objective.value(current),
        metadata=metadata,
    )


def required_updates_for_weight_decrease(
    current_solution_value: float, delta: float, p: int
) -> int:
    """Theorem 4's update count ``⌈log_{(p-2)/(p-3)} w/(w-δ)⌉``.

    Parameters
    ----------
    current_solution_value:
        ``w`` — the value ``φ(S)`` of the solution before the weight decrease.
    delta:
        The magnitude of the decrease.
    p:
        The cardinality constraint.  For ``p ≤ 3`` (Corollary 3) a single
        update always suffices.

    Returns
    -------
    int
        The number of oblivious updates sufficient to restore ratio 3.
    """
    if delta < 0:
        raise InvalidParameterError("delta must be non-negative")
    if current_solution_value < 0:
        raise InvalidParameterError("the solution value must be non-negative")
    if delta == 0:
        return 0
    if p <= 3:
        return 1
    if delta <= current_solution_value / (p - 2):
        return 1
    if delta >= current_solution_value:
        # The whole solution value could be wiped out; the bound degenerates.
        raise InvalidParameterError(
            "Theorem 4 requires the decrease to be smaller than the solution value"
        )
    base = (p - 2) / (p - 3)
    ratio = current_solution_value / (current_solution_value - delta)
    return max(1, math.ceil(math.log(ratio, base)))
