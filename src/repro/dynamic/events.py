"""Batched event streams for the dynamic engine.

The perturbation model of Section 6 describes *single* changes; real update
streams arrive thousands at a time.  :class:`EventBatch` is the typed-array
form of one **tick** of such a stream: weight changes, distance changes,
insertions and deletions collected into flat NumPy arrays so the engine can
apply a whole tick in a handful of vectorized passes instead of one
Python-level dispatch per event.

Within-tick semantics are deliberately *simultaneous*, with a fixed
deterministic resolution order:

1. weight **sets** (absolute assignments; on a repeated element the last
   recorded set wins),
2. weight **deltas** (all accumulate, on top of the sets),
3. distance **sets** (last recorded set per unordered pair wins),
4. distance **deltas** (accumulate),
5. **insertions**, in recorded order,
6. **deletions**,
7. one repair phase (the engine's swap/refill schedule).

A batch built from legacy :mod:`~repro.dynamic.perturbation` objects uses
only deltas, so replaying a perturbation stream one event per tick through
the batched path reproduces the sequential engine exactly.

Builders validate what they can locally (finiteness, non-negative absolute
values, ``u ≠ v``); state-dependent checks — a delta driving a weight or
distance negative, unknown element ids — belong to the engine, which sees
the current instance.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    Perturbation,
    WeightDecrease,
    WeightIncrease,
)
from repro.exceptions import PerturbationError, SnapshotVersionError

__all__ = [
    "EventBatch",
    "EventBatchBuilder",
    "decode_event_batch",
    "encode_event_batch",
]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class EventBatch:
    """One tick of dynamic events as typed, read-only arrays.

    Instances come from :class:`EventBatchBuilder` (or
    :meth:`from_perturbations`); the engine consumes the arrays directly.
    ``insert_distances`` rows are aligned to the engine's slot ids at the
    start of the tick plus any inserts earlier in the same batch, mirroring
    how the growable matrix receives them.  ``insert_points`` is the
    feature-space alternative used by the sharded tier; a batch carries one
    representation or the other, never both.
    """

    weight_set_elements: np.ndarray
    weight_set_values: np.ndarray
    weight_delta_elements: np.ndarray
    weight_deltas: np.ndarray
    distance_set_pairs: np.ndarray  # (m, 2) with u < v
    distance_set_values: np.ndarray
    distance_delta_pairs: np.ndarray
    distance_deltas: np.ndarray
    insert_weights: np.ndarray
    insert_distances: Tuple[np.ndarray, ...] = ()
    insert_points: Optional[np.ndarray] = None
    delete_elements: np.ndarray = field(
        default_factory=lambda: _readonly(np.zeros(0, dtype=int))
    )

    @property
    def num_events(self) -> int:
        """Total number of recorded events in the tick."""
        return int(
            self.weight_set_elements.size
            + self.weight_delta_elements.size
            + self.distance_set_pairs.shape[0]
            + self.distance_delta_pairs.shape[0]
            + self.insert_weights.size
            + self.delete_elements.size
        )

    @property
    def is_empty(self) -> bool:
        """Whether the tick carries no events at all."""
        return self.num_events == 0

    @property
    def num_inserts(self) -> int:
        """Number of insertions in the tick."""
        return int(self.insert_weights.size)

    def touched_elements(self) -> np.ndarray:
        """Sorted unique *existing* element ids any event refers to.

        Insertions are excluded (their ids do not exist yet); deletions and
        both endpoints of every distance event are included.  The engine
        seeds its dirty-element set from this.
        """
        parts = [
            self.weight_set_elements,
            self.weight_delta_elements,
            self.distance_set_pairs.ravel(),
            self.distance_delta_pairs.ravel(),
            self.delete_elements,
        ]
        return np.unique(np.concatenate([np.asarray(p, dtype=int) for p in parts]))

    @classmethod
    def from_perturbations(cls, perturbations: Iterable[Perturbation]) -> "EventBatch":
        """Convert legacy Type I–IV perturbations into one batch (all deltas)."""
        builder = EventBatchBuilder()
        for perturbation in perturbations:
            builder.add(perturbation)
        return builder.build()


class EventBatchBuilder:
    """Accumulate events one call at a time, then :meth:`build` the arrays."""

    def __init__(self) -> None:
        self._weight_sets: List[Tuple[int, float]] = []
        self._weight_deltas: List[Tuple[int, float]] = []
        self._distance_sets: List[Tuple[int, int, float]] = []
        self._distance_deltas: List[Tuple[int, int, float]] = []
        self._insert_weights: List[float] = []
        self._insert_distances: List[Optional[np.ndarray]] = []
        self._insert_points: List[Optional[np.ndarray]] = []
        self._deletes: List[int] = []

    def __len__(self) -> int:
        return (
            len(self._weight_sets)
            + len(self._weight_deltas)
            + len(self._distance_sets)
            + len(self._distance_deltas)
            + len(self._insert_weights)
            + len(self._deletes)
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def set_weight(self, element: Element, value: float) -> "EventBatchBuilder":
        """Record ``w(element) = value`` (absolute assignment)."""
        value = float(value)
        if not np.isfinite(value):
            raise PerturbationError("weight values must be finite")
        if value < 0:
            raise PerturbationError("weights must be non-negative")
        self._weight_sets.append((int(element), value))
        return self

    def change_weight(self, element: Element, delta: float) -> "EventBatchBuilder":
        """Record ``w(element) += delta`` (either sign; Type I/II for ±)."""
        delta = float(delta)
        if not np.isfinite(delta):
            raise PerturbationError("weight deltas must be finite")
        if delta == 0:
            raise PerturbationError("a weight change must have delta != 0")
        self._weight_deltas.append((int(element), delta))
        return self

    def set_distance(self, u: Element, v: Element, value: float) -> "EventBatchBuilder":
        """Record ``d(u, v) = value`` (absolute assignment)."""
        u, v = int(u), int(v)
        if u == v:
            raise PerturbationError("distance events need two distinct elements")
        value = float(value)
        if not np.isfinite(value):
            raise PerturbationError("distance values must be finite")
        if value < 0:
            raise PerturbationError("distances must be non-negative")
        self._distance_sets.append((min(u, v), max(u, v), value))
        return self

    def change_distance(
        self, u: Element, v: Element, delta: float
    ) -> "EventBatchBuilder":
        """Record ``d(u, v) += delta`` (either sign; Type III/IV for ±)."""
        u, v = int(u), int(v)
        if u == v:
            raise PerturbationError("distance events need two distinct elements")
        delta = float(delta)
        if not np.isfinite(delta):
            raise PerturbationError("distance deltas must be finite")
        if delta == 0:
            raise PerturbationError("a distance change must have delta != 0")
        self._distance_deltas.append((min(u, v), max(u, v), delta))
        return self

    def insert(
        self,
        weight: float,
        *,
        distances: Optional[np.ndarray] = None,
        point: Optional[np.ndarray] = None,
    ) -> "EventBatchBuilder":
        """Record the insertion of a new element.

        ``distances`` is the new element's distance row over the universe as
        it stands at tick start plus inserts recorded earlier in this batch
        (the dense engine's representation); ``point`` its feature vector
        (the sharded tier's).  Give at most one; the engine rejects the form
        it cannot host.
        """
        weight = float(weight)
        if not np.isfinite(weight):
            raise PerturbationError("weight values must be finite")
        if weight < 0:
            raise PerturbationError("weights must be non-negative")
        if distances is not None and point is not None:
            raise PerturbationError("an insert takes distances or a point, not both")
        if distances is not None:
            distances = np.array(distances, dtype=float)
            if distances.ndim != 1:
                raise PerturbationError("insert distances must be a 1-D row")
        if point is not None:
            point = np.array(point, dtype=float)
            if point.ndim != 1:
                raise PerturbationError("an insert point must be a 1-D vector")
        self._insert_weights.append(weight)
        self._insert_distances.append(distances)
        self._insert_points.append(point)
        return self

    def delete(self, element: Element) -> "EventBatchBuilder":
        """Record the deletion of an existing element."""
        self._deletes.append(int(element))
        return self

    def add(self, perturbation: Perturbation) -> "EventBatchBuilder":
        """Record a legacy Type I–IV perturbation as the equivalent delta."""
        if isinstance(perturbation, WeightIncrease):
            return self.change_weight(perturbation.element, perturbation.delta)
        if isinstance(perturbation, WeightDecrease):
            return self.change_weight(perturbation.element, -perturbation.delta)
        if isinstance(perturbation, DistanceIncrease):
            return self.change_distance(
                perturbation.u, perturbation.v, perturbation.delta
            )
        if isinstance(perturbation, DistanceDecrease):
            return self.change_distance(
                perturbation.u, perturbation.v, -perturbation.delta
            )
        raise PerturbationError(f"unknown perturbation {perturbation!r}")

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> EventBatch:
        """Freeze the recorded events into an :class:`EventBatch`."""
        rows = [d for d in self._insert_distances if d is not None]
        points = [pt for pt in self._insert_points if pt is not None]
        if rows and points:
            raise PerturbationError(
                "a batch must use one insert representation: distances or points"
            )
        insert_points: Optional[np.ndarray] = None
        if points:
            if len(points) != len(self._insert_weights):
                raise PerturbationError("every insert in a point batch needs a point")
            dims = {pt.shape[0] for pt in points}
            if len(dims) != 1:
                raise PerturbationError("insert points must share one dimensionality")
            insert_points = _readonly(np.vstack(points))
        insert_rows: Tuple[np.ndarray, ...] = ()
        if rows:
            if len(rows) != len(self._insert_weights):
                raise PerturbationError(
                    "every insert in a distance batch needs a distance row"
                )
            insert_rows = tuple(_readonly(row) for row in self._insert_distances)

        def ints(values: List[int]) -> np.ndarray:
            return _readonly(np.asarray(values, dtype=int))

        def floats(values: List[float]) -> np.ndarray:
            return _readonly(np.asarray(values, dtype=float))

        def pairs(
            events: List[Tuple[int, int, float]],
        ) -> Tuple[np.ndarray, np.ndarray]:
            if not events:
                return (
                    _readonly(np.zeros((0, 2), dtype=int)),
                    _readonly(np.zeros(0, dtype=float)),
                )
            array = np.asarray(events, dtype=float)
            return (
                _readonly(array[:, :2].astype(int)),
                _readonly(array[:, 2].copy()),
            )

        distance_set_pairs, distance_set_values = pairs(self._distance_sets)
        distance_delta_pairs, distance_deltas = pairs(self._distance_deltas)
        return EventBatch(
            weight_set_elements=ints([e for e, _ in self._weight_sets]),
            weight_set_values=floats([v for _, v in self._weight_sets]),
            weight_delta_elements=ints([e for e, _ in self._weight_deltas]),
            weight_deltas=floats([d for _, d in self._weight_deltas]),
            distance_set_pairs=distance_set_pairs,
            distance_set_values=distance_set_values,
            distance_delta_pairs=distance_delta_pairs,
            distance_deltas=distance_deltas,
            insert_weights=floats(self._insert_weights),
            insert_distances=insert_rows,
            insert_points=insert_points,
            delete_elements=ints(self._deletes),
        )


# ----------------------------------------------------------------------
# Wire format (write-ahead log records)
# ----------------------------------------------------------------------
# Batches are journaled as an ``np.savez`` archive rather than a pickle:
# the payload is then pure typed arrays, so a corrupt or adversarial log
# record can at worst fail to parse — it cannot execute code on replay.
_ENCODING_VERSION = 1

_ARRAY_FIELDS = (
    "weight_set_elements",
    "weight_set_values",
    "weight_delta_elements",
    "weight_deltas",
    "distance_set_pairs",
    "distance_set_values",
    "distance_delta_pairs",
    "distance_deltas",
    "insert_weights",
    "delete_elements",
)


def encode_event_batch(batch: EventBatch) -> bytes:
    """Serialize one :class:`EventBatch` into a self-describing byte string.

    The inverse of :func:`decode_event_batch`; round-tripping is exact
    (dtypes, values and the one-of insert representation all survive), which
    is what lets the write-ahead log replay a journaled tick bit-identically.
    """
    arrays = {name: np.asarray(getattr(batch, name)) for name in _ARRAY_FIELDS}
    arrays["__meta__"] = np.array(
        [
            _ENCODING_VERSION,
            len(batch.insert_distances),
            0 if batch.insert_points is None else 1,
        ],
        dtype=np.int64,
    )
    for index, row in enumerate(batch.insert_distances):
        arrays[f"__insert_row_{index}__"] = np.asarray(row)
    if batch.insert_points is not None:
        arrays["__insert_points__"] = np.asarray(batch.insert_points)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def decode_event_batch(data: bytes) -> EventBatch:
    """Reconstruct the :class:`EventBatch` serialized by :func:`encode_event_batch`."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        meta = archive["__meta__"]
        version = int(meta[0])
        if version != _ENCODING_VERSION:
            raise SnapshotVersionError(
                f"event-batch record has encoding version {version}; this build "
                f"reads version {_ENCODING_VERSION}"
            )
        fields = {name: _readonly(archive[name]) for name in _ARRAY_FIELDS}
        num_rows, has_points = int(meta[1]), bool(meta[2])
        insert_rows = tuple(
            _readonly(archive[f"__insert_row_{index}__"]) for index in range(num_rows)
        )
        insert_points = _readonly(archive["__insert_points__"]) if has_points else None
    return EventBatch(
        insert_distances=insert_rows,
        insert_points=insert_points,
        **fields,
    )
