"""Perturbation model for dynamic updates (Section 6).

The paper classifies single changes into four types:

* **Type I** — a weight increase on an element,
* **Type II** — a weight decrease on an element,
* **Type III** — a distance increase between two elements,
* **Type IV** — a distance decrease between two elements,

and distance perturbations are assumed to preserve the metric condition.
Each perturbation is a small immutable description of *what changes*;
applying it to an instance is the engine's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from repro._types import Element
from repro.exceptions import PerturbationError


class PerturbationType(str, Enum):
    """The paper's four perturbation types."""

    WEIGHT_INCREASE = "I"
    WEIGHT_DECREASE = "II"
    DISTANCE_INCREASE = "III"
    DISTANCE_DECREASE = "IV"


@dataclass(frozen=True)
class WeightIncrease:
    """Type I: increase ``w(element)`` by ``delta > 0``."""

    element: Element
    delta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise PerturbationError("a weight increase must have delta > 0")

    @property
    def kind(self) -> PerturbationType:
        """The perturbation type."""
        return PerturbationType.WEIGHT_INCREASE


@dataclass(frozen=True)
class WeightDecrease:
    """Type II: decrease ``w(element)`` by ``delta > 0`` (weight stays ≥ 0)."""

    element: Element
    delta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise PerturbationError("a weight decrease must have delta > 0")

    @property
    def kind(self) -> PerturbationType:
        return PerturbationType.WEIGHT_DECREASE


@dataclass(frozen=True)
class DistanceIncrease:
    """Type III: increase ``d(u, v)`` by ``delta > 0`` (must stay a metric)."""

    u: Element
    v: Element
    delta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise PerturbationError("a distance increase must have delta > 0")
        if self.u == self.v:
            raise PerturbationError("distance perturbations need two distinct elements")

    @property
    def kind(self) -> PerturbationType:
        return PerturbationType.DISTANCE_INCREASE


@dataclass(frozen=True)
class DistanceDecrease:
    """Type IV: decrease ``d(u, v)`` by ``delta > 0`` (must stay a metric)."""

    u: Element
    v: Element
    delta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise PerturbationError("a distance decrease must have delta > 0")
        if self.u == self.v:
            raise PerturbationError("distance perturbations need two distinct elements")

    @property
    def kind(self) -> PerturbationType:
        return PerturbationType.DISTANCE_DECREASE


#: Any of the four perturbation kinds.
Perturbation = Union[WeightIncrease, WeightDecrease, DistanceIncrease, DistanceDecrease]


def describe(perturbation: Perturbation) -> str:
    """Human-readable one-line description of a perturbation."""
    if isinstance(perturbation, WeightIncrease):
        return f"Type I: w({perturbation.element}) += {perturbation.delta:.4f}"
    if isinstance(perturbation, WeightDecrease):
        return f"Type II: w({perturbation.element}) -= {perturbation.delta:.4f}"
    if isinstance(perturbation, DistanceIncrease):
        return (
            f"Type III: d({perturbation.u}, {perturbation.v}) += {perturbation.delta:.4f}"
        )
    if isinstance(perturbation, DistanceDecrease):
        return (
            f"Type IV: d({perturbation.u}, {perturbation.v}) -= {perturbation.delta:.4f}"
        )
    raise PerturbationError(f"unknown perturbation {perturbation!r}")
