"""Truncated matroids (intersection with a uniform matroid).

The paper notes that intersecting any matroid with a uniform matroid is again
a matroid, so constraints like "a balanced selection of at most p items" stay
inside the framework of Theorem 2.  :class:`TruncatedMatroid` wraps an inner
matroid and additionally caps the cardinality.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.matroids.base import Matroid


class TruncatedMatroid(Matroid):
    """``S`` is independent iff it is independent in ``inner`` and ``|S| <= p``."""

    def __init__(self, inner: Matroid, p: int) -> None:
        if p < 0:
            raise InvalidParameterError("p must be non-negative")
        self._inner = inner
        self._p = int(p)

    @property
    def n(self) -> int:
        return self._inner.n

    @property
    def p(self) -> int:
        """The cardinality cap."""
        return self._p

    @property
    def inner(self) -> Matroid:
        """The wrapped matroid."""
        return self._inner

    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = set(subset)
        if len(members) > self._p:
            return False
        return self._inner.is_independent(members)

    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        return min(self._inner.rank(subset), self._p)

    def swap_candidates(
        self, basis: Iterable[Element], incoming: Element
    ) -> Iterator[Element]:
        members = frozenset(basis)
        if incoming in members:
            return
        # A 1-for-1 swap never changes cardinality, so only the inner matroid
        # constrains which element may leave.
        yield from self._inner.swap_candidates(members, incoming)

    def swap_feasibility(
        self,
        basis: Iterable[Element],
        incoming: np.ndarray,
        outgoing: np.ndarray,
    ) -> Optional[np.ndarray]:
        return self._inner.swap_feasibility(basis, incoming, outgoing)

    def pair_feasibility_mask(self) -> Optional[np.ndarray]:
        if self._p < 2:
            return np.zeros((self.n, self.n), dtype=bool)
        return self._inner.pair_feasibility_mask()

    def restrict(self, elements: Iterable[Element]) -> "TruncatedMatroid":
        """Restriction commutes with truncation: restrict the inner matroid, keep the cap."""
        return TruncatedMatroid(self._inner.restrict(elements), self._p)
