"""Matroid substrate.

Section 5 of the paper generalizes the cardinality constraint to independence
in an arbitrary matroid.  This package provides the matroid interface used by
the local-search solver plus the concrete families the paper names: uniform
(cardinality), partition, transversal, graphic, and truncation (intersection
with a uniform matroid).  The Brualdi exchange bijection (Lemma 2) used in
Theorem 2's analysis is implemented in :mod:`repro.matroids.exchange` and
exercised by the property tests.
"""

from repro.matroids.base import Matroid
from repro.matroids.exchange import exchange_bijection
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.matching import hopcroft_karp, maximum_bipartite_matching
from repro.matroids.partition import PartitionMatroid
from repro.matroids.restriction import RestrictedMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.truncation import TruncatedMatroid
from repro.matroids.uniform import UniformMatroid

__all__ = [
    "Matroid",
    "UniformMatroid",
    "PartitionMatroid",
    "TransversalMatroid",
    "GraphicMatroid",
    "TruncatedMatroid",
    "RestrictedMatroid",
    "exchange_bijection",
    "hopcroft_karp",
    "maximum_bipartite_matching",
]
