"""Restriction of a matroid to a sub-universe.

Matroids are closed under restriction (deletion of the complement), so a
query-scoped candidate pool stays inside the framework of Theorem 2: local
search over the restricted matroid retains its guarantee on the sub-instance.
:class:`RestrictedMatroid` is the generic oracle-based fallback for
:meth:`~repro.matroids.base.Matroid.restrict`; families with a direct
restricted representation (uniform, partition, truncated) override
``restrict`` and never construct this wrapper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.matroids.base import Matroid
from repro.utils.validation import check_candidate_pool


class RestrictedMatroid(Matroid):
    """A matroid restricted to a candidate pool, re-indexed from 0.

    Local element ``i`` maps to ``pool[i]`` in the inner matroid's universe
    (``pool`` = the candidate iterable deduplicated in first-seen order).
    Independence, swap candidacy and the vectorized feasibility hooks are all
    delegated to the inner matroid after index translation, so the wrapper is
    exactly as strong as the family it wraps: closed-form hooks stay
    closed-form, oracle-only families stay oracle-only.
    """

    def __init__(self, inner: Matroid, elements: Iterable[Element]) -> None:
        self._inner = inner
        self._global_array = check_candidate_pool(elements, inner.n)
        self._globals: Tuple[Element, ...] = tuple(self._global_array.tolist())
        self._locals: Dict[Element, Element] = {
            g: i for i, g in enumerate(self._globals)
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inner(self) -> Matroid:
        """The unrestricted matroid this view delegates to."""
        return self._inner

    @property
    def global_elements(self) -> Tuple[Element, ...]:
        """Local index ``i`` corresponds to ``global_elements[i]``."""
        return self._globals

    # ------------------------------------------------------------------
    # Matroid interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._globals)

    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = set(subset)
        if any(e < 0 or e >= self.n for e in members):
            return False
        return self._inner.is_independent(self._globals[e] for e in members)

    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        if subset is None:
            return self._inner.rank(self._globals)
        return self._inner.rank(self._globals[e] for e in set(subset))

    def swap_candidates(
        self, basis: Iterable[Element], incoming: Element
    ) -> Iterator[Element]:
        members = frozenset(basis)
        if incoming in members:
            return
        mapped = [self._globals[e] for e in members]
        for outgoing in self._inner.swap_candidates(mapped, self._globals[incoming]):
            yield self._locals[outgoing]

    def swap_feasibility(
        self,
        basis: Iterable[Element],
        incoming: np.ndarray,
        outgoing: np.ndarray,
    ) -> Optional[np.ndarray]:
        # Index translation preserves the (i, j) alignment, so the inner
        # family's closed-form rule (when it has one) applies verbatim.
        mapped_basis = [self._globals[e] for e in basis]
        return self._inner.swap_feasibility(
            mapped_basis,
            self._global_array[np.asarray(incoming, dtype=int)],
            self._global_array[np.asarray(outgoing, dtype=int)],
        )

    def pair_feasibility_mask(self) -> Optional[np.ndarray]:
        mask = self._inner.pair_feasibility_mask()
        if mask is None:
            return None
        return mask[np.ix_(self._global_array, self._global_array)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RestrictedMatroid(n={self.n}, "
            f"inner={type(self._inner).__name__}(n={self._inner.n}))"
        )
