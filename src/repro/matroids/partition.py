"""Partition matroids.

The universe is partitioned into blocks ``S_1, ..., S_m`` with per-block
capacities ``k_1, ..., k_m``; a set is independent iff it takes at most
``k_i`` elements from block ``i``.  The paper uses partition matroids to model
"balance" constraints orthogonal to the distance-based diversity: tuples from
different database fields, stocks from different economic sectors, and the
Appendix's bad instance for the greedy algorithm.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.matroids.base import Matroid
from repro.utils.validation import check_candidate_pool


class PartitionMatroid(Matroid):
    """A partition matroid given by a block label per element and block capacities.

    Parameters
    ----------
    block_of:
        ``block_of[u]`` is the (hashable) label of the block containing ``u``.
    capacities:
        Mapping from block label to its capacity ``k_i >= 0``.  Labels missing
        from the mapping default to capacity 1.
    """

    def __init__(
        self,
        block_of: Sequence,
        capacities: Optional[Mapping] = None,
    ) -> None:
        self._block_of = list(block_of)
        caps: Dict = dict(capacities or {})
        for label, cap in caps.items():
            if cap < 0:
                raise InvalidParameterError(
                    f"capacity of block {label!r} must be non-negative, got {cap}"
                )
        self._capacities = caps
        self._block_sizes = Counter(self._block_of)
        # Integer block codes + per-element capacities for the vectorized
        # feasibility hooks (labels may be arbitrary hashables).
        label_code = {
            label: code for code, label in enumerate(dict.fromkeys(self._block_of))
        }
        self._num_blocks = len(label_code)
        self._codes = np.array(
            [label_code[label] for label in self._block_of], dtype=int
        )
        self._element_capacity = np.array(
            [self.capacity(label) for label in self._block_of], dtype=int
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._block_of)

    def block(self, element: Element) -> object:
        """Return the block label of ``element``."""
        return self._block_of[element]

    def capacity(self, label) -> int:
        """Return the capacity of block ``label`` (default 1)."""
        return int(self._capacities.get(label, 1))

    @property
    def blocks(self) -> Sequence:
        """The distinct block labels in first-appearance order."""
        return tuple(dict.fromkeys(self._block_of))

    # ------------------------------------------------------------------
    # Matroid interface
    # ------------------------------------------------------------------
    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = set(subset)
        if any(e < 0 or e >= self.n for e in members):
            return False
        usage = Counter(self._block_of[e] for e in members)
        return all(count <= self.capacity(label) for label, count in usage.items())

    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        if subset is None:
            sizes = self._block_sizes
        else:
            sizes = Counter(self._block_of[e] for e in set(subset))
        return sum(min(count, self.capacity(label)) for label, count in sizes.items())

    def swap_candidates(
        self, basis: Iterable[Element], incoming: Element
    ) -> Iterator[Element]:
        members = frozenset(basis)
        if incoming in members:
            return
        incoming_block = self._block_of[incoming]
        usage = Counter(self._block_of[e] for e in members)
        slack = self.capacity(incoming_block) - usage.get(incoming_block, 0)
        for outgoing in members:
            if slack > 0 or self._block_of[outgoing] == incoming_block:
                yield outgoing

    def swap_feasibility(
        self,
        basis: Iterable[Element],
        incoming: np.ndarray,
        outgoing: np.ndarray,
    ) -> np.ndarray:
        members = list(basis)
        if not members:
            return np.ones((len(incoming), len(outgoing)), dtype=bool)
        usage = np.bincount(self._codes[members], minlength=max(self._num_blocks, 1))
        in_codes = self._codes[incoming]
        slack = self._element_capacity[incoming] - usage[in_codes]
        return (slack[:, None] > 0) | (
            self._codes[outgoing][None, :] == in_codes[:, None]
        )

    def pair_feasibility_mask(self) -> np.ndarray:
        codes = self._codes
        caps = self._element_capacity
        same_block = codes[:, None] == codes[None, :]
        admissible = caps >= 1
        cross = admissible[:, None] & admissible[None, :] & ~same_block
        within = same_block & (caps >= 2)[:, None]
        return cross | within

    def restrict(self, elements: Iterable[Element]) -> "PartitionMatroid":
        """Restriction keeps each element's block label and the block capacities."""
        pool = check_candidate_pool(elements, self.n).tolist()
        block_of = [self._block_of[e] for e in pool]
        capacities = {label: self.capacity(label) for label in set(block_of)}
        return PartitionMatroid(block_of, capacities)

    @classmethod
    def uniform_blocks(cls, sizes: Sequence[int], capacities: Sequence[int]
                       ) -> "PartitionMatroid":
        """Build a partition matroid from consecutive blocks of given sizes."""
        if len(sizes) != len(capacities):
            raise InvalidParameterError("sizes and capacities must have equal length")
        block_of = []
        for label, size in enumerate(sizes):
            if size < 0:
                raise InvalidParameterError("block sizes must be non-negative")
            block_of.extend([label] * size)
        caps = {label: cap for label, cap in enumerate(capacities)}
        return cls(block_of, caps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionMatroid(n={self.n}, blocks={len(self.blocks)}, "
            f"rank={self.rank()})"
        )
