"""Uniform matroids (cardinality constraints).

``S`` is independent iff ``|S| <= p``.  The cardinality-constrained problem of
Section 4 is exactly max-sum diversification over a uniform matroid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.matroids.base import Matroid
from repro.utils.validation import check_candidate_pool


class UniformMatroid(Matroid):
    """The uniform matroid ``U_{p,n}``: independent sets are those of size ≤ p."""

    def __init__(self, n: int, p: int) -> None:
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        if p < 0:
            raise InvalidParameterError("p must be non-negative")
        self._n = int(n)
        self._p = int(min(p, n))

    @property
    def n(self) -> int:
        return self._n

    @property
    def p(self) -> int:
        """The cardinality bound (clamped to ``n``)."""
        return self._p

    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = set(subset)
        if any(e < 0 or e >= self._n for e in members):
            return False
        return len(members) <= self._p

    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        if subset is None:
            return self._p
        return min(len(set(subset)), self._p)

    def swap_candidates(
        self, basis: Iterable[Element], incoming: Element
    ) -> Iterator[Element]:
        members = frozenset(basis)
        if incoming in members:
            return
        # Any member can leave: cardinality is preserved by a 1-for-1 swap.
        yield from members

    def swap_feasibility(
        self,
        basis: Iterable[Element],
        incoming: np.ndarray,
        outgoing: np.ndarray,
    ) -> np.ndarray:
        # Every 1-for-1 swap preserves cardinality, hence independence.
        return np.ones((len(incoming), len(outgoing)), dtype=bool)

    def pair_feasibility_mask(self) -> np.ndarray:
        feasible = self._p >= 2
        return np.full((self._n, self._n), feasible, dtype=bool)

    def restrict(self, elements: Iterable[Element]) -> "UniformMatroid":
        """Restriction of ``U_{p,n}`` to a pool of size ``k`` is ``U_{min(p,k),k}``."""
        size = check_candidate_pool(elements, self._n).size
        return UniformMatroid(size, min(self._p, size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformMatroid(n={self._n}, p={self._p})"
