"""Abstract matroid interface.

A matroid ``M = (U, F)`` is defined by its independence oracle.  The local
search algorithm of Section 5 only needs:

* :meth:`Matroid.is_independent` — the oracle itself,
* :meth:`Matroid.extend_to_basis` — grow a set into a basis (used to build the
  initial solution containing the best pair ``{x, y}``),
* :meth:`Matroid.swap_candidates` — which single swaps keep a basis feasible.

Default implementations derive everything from the oracle; concrete families
override them when a direct formula is faster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro._types import Element
from repro.exceptions import InfeasibleError, MatroidError, NotIndependentError


class Matroid(ABC):
    """A matroid over the ground set ``{0, ..., n-1}``."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of ground-set elements."""

    @abstractmethod
    def is_independent(self, subset: Iterable[Element]) -> bool:
        """Return ``True`` when the subset is independent."""

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        """Return the rank of ``subset`` (or of the whole matroid).

        The generic implementation greedily grows an independent set inside
        ``subset`` using only the independence oracle, which is correct for
        every matroid by the augmentation property.
        """
        universe = (
            list(range(self.n)) if subset is None else list(dict.fromkeys(subset))
        )
        independent: Set[Element] = set()
        for element in universe:
            candidate = independent | {element}
            if self.is_independent(candidate):
                independent = candidate
        return len(independent)

    def extend_to_basis(
        self,
        subset: Iterable[Element],
        *,
        preference: Optional[Iterable[Element]] = None,
    ) -> FrozenSet[Element]:
        """Extend an independent set to a basis of the matroid.

        Parameters
        ----------
        subset:
            An independent set to extend.  Raises
            :class:`~repro.exceptions.NotIndependentError` otherwise.
        preference:
            Optional element ordering; earlier elements are tried first, so a
            caller can bias the completion (e.g. by quality).
        """
        current: Set[Element] = set(subset)
        if not self.is_independent(current):
            raise NotIndependentError(
                f"cannot extend a dependent set to a basis: {sorted(current)}"
            )
        order = list(preference) if preference is not None else list(range(self.n))
        for element in order:
            if element in current:
                continue
            candidate = current | {element}
            if self.is_independent(candidate):
                current = candidate
        return frozenset(current)

    def a_basis(self) -> FrozenSet[Element]:
        """Return an arbitrary basis."""
        return self.extend_to_basis(frozenset())

    def is_basis(self, subset: Iterable[Element]) -> bool:
        """Return ``True`` when ``subset`` is a maximal independent set."""
        members = set(subset)
        if not self.is_independent(members):
            return False
        for element in range(self.n):
            if element in members:
                continue
            if self.is_independent(members | {element}):
                return False
        return True

    def swap_candidates(
        self, basis: Iterable[Element], incoming: Element
    ) -> Iterator[Element]:
        """Yield the elements ``v`` in ``basis`` with ``basis - v + incoming`` independent.

        This is the feasibility hook the single-swap local search uses.  The
        generic implementation queries the oracle once per member.
        """
        members = frozenset(basis)
        if incoming in members:
            return
        for outgoing in members:
            if self.is_independent((members - {outgoing}) | {incoming}):
                yield outgoing

    # ------------------------------------------------------------------
    # Vectorized feasibility hooks (used by repro.core.kernels)
    # ------------------------------------------------------------------
    def swap_feasibility(
        self,
        basis: Iterable[Element],
        incoming: np.ndarray,
        outgoing: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Vectorized counterpart of :meth:`swap_candidates`.

        Returns a boolean array of shape ``(len(incoming), len(outgoing))``
        whose ``(i, j)`` entry says whether ``basis - outgoing[j] +
        incoming[i]`` is independent, or ``None`` when the family has no
        closed-form rule (callers then fall back to the oracle loop).  All
        ``incoming`` elements must lie outside ``basis`` and all ``outgoing``
        elements inside it.
        """
        return None

    def pair_feasibility_mask(self) -> Optional[np.ndarray]:
        """Boolean ``n x n`` mask of independent pairs, or ``None``.

        ``mask[x, y]`` says whether ``{x, y}`` (``x != y``) is independent.
        Families without a closed-form rule return ``None`` and callers use
        :func:`restriction_feasible_pairs` instead.
        """
        return None

    def restrict(self, elements: Iterable[Element]) -> "Matroid":
        """Return this matroid restricted to ``elements``, re-indexed from 0.

        Matroids are closed under restriction, so the result is again a
        matroid; local element ``i`` is the ``i``-th entry of ``elements``
        (deduplicated, first-seen order).  The default wraps the independence
        oracle with an index mapping; families whose restriction has a direct
        representation override it (uniform → uniform, partition → partition,
        truncation → truncation of the restricted inner matroid).
        """
        from repro.matroids.restriction import RestrictedMatroid

        return RestrictedMatroid(self, elements)

    def bases(self, *, limit: Optional[int] = None) -> Iterator[FrozenSet[Element]]:
        """Enumerate bases (exponential; intended for small test instances)."""
        r = self.rank()
        count = 0
        for combo in combinations(range(self.n), r):
            candidate = frozenset(combo)
            if self.is_independent(candidate):
                yield candidate
                count += 1
                if limit is not None and count >= limit:
                    return

    def independent_sets(
        self, *, max_size: Optional[int] = None, limit: Optional[int] = None
    ) -> Iterator[FrozenSet[Element]]:
        """Enumerate independent sets up to ``max_size`` (small instances only)."""
        top = self.rank() if max_size is None else min(max_size, self.n)
        count = 0
        for size in range(top + 1):
            for combo in combinations(range(self.n), size):
                candidate = frozenset(combo)
                if self.is_independent(candidate):
                    yield candidate
                    count += 1
                    if limit is not None and count >= limit:
                        return

    # ------------------------------------------------------------------
    # Axiom checks (used by property tests and by user-defined matroids)
    # ------------------------------------------------------------------
    def check_axioms(self, *, max_size: Optional[int] = None) -> None:
        """Exhaustively verify the hereditary and augmentation axioms.

        Exponential in ``n``; intended for ground sets of at most ~10 elements
        in tests.  Raises :class:`~repro.exceptions.MatroidError` on failure.
        """
        if not self.is_independent(frozenset()):
            raise MatroidError("the empty set must be independent")
        independents: List[FrozenSet[Element]] = list(
            self.independent_sets(max_size=max_size)
        )
        independent_set = set(independents)
        for subset in independents:
            for element in subset:
                if frozenset(subset - {element}) not in independent_set:
                    raise MatroidError(
                        f"hereditary axiom fails: {sorted(subset)} is independent but "
                        f"{sorted(subset - {element})} is not"
                    )
        for bigger in independents:
            for smaller in independents:
                if len(bigger) <= len(smaller):
                    continue
                if any(
                    frozenset(smaller | {element}) in independent_set
                    for element in bigger - smaller
                ):
                    continue
                raise MatroidError(
                    f"augmentation axiom fails for A={sorted(bigger)}, B={sorted(smaller)}"
                )

    def require_rank_at_least(self, minimum: int) -> None:
        """Raise :class:`InfeasibleError` unless the matroid rank is at least ``minimum``."""
        if self.rank() < minimum:
            raise InfeasibleError(
                f"matroid rank {self.rank()} is below the required minimum {minimum}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


def restriction_feasible_pairs(matroid: Matroid) -> Iterator[Tuple[Element, Element]]:
    """Yield all pairs ``{x, y}`` that are independent in the matroid.

    The local search initialization (Section 5) picks the feasible pair
    maximizing ``f({x, y}) + λ·d(x, y)``.
    """
    for x in range(matroid.n):
        for y in range(x + 1, matroid.n):
            if matroid.is_independent({x, y}):
                yield x, y
