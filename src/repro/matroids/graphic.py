"""Graphic matroids.

Ground-set elements are the edges of an undirected multigraph; a set of edges
is independent iff it is acyclic (a forest).  Included both as a further
standard matroid family for the local-search solver and as a stress test for
the generic matroid machinery (its independence structure is not a simple
counting constraint).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.matroids.base import Matroid


class _UnionFind:
    """Union-find with path compression and union by rank."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        if self._rank[root_x] < self._rank[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        if self._rank[root_x] == self._rank[root_y]:
            self._rank[root_x] += 1
        return True


class GraphicMatroid(Matroid):
    """The cycle matroid of an undirected multigraph.

    Parameters
    ----------
    num_vertices:
        Number of graph vertices.
    edges:
        ``edges[i] = (a, b)`` — ground-set element ``i`` is the edge ``{a, b}``.
        Self-loops are allowed but are never independent (they form a cycle).
    """

    def __init__(self, num_vertices: int, edges: Sequence[Tuple[int, int]]) -> None:
        if num_vertices < 0:
            raise InvalidParameterError("num_vertices must be non-negative")
        self._num_vertices = int(num_vertices)
        self._edges: List[Tuple[int, int]] = []
        for index, (a, b) in enumerate(edges):
            if not (0 <= a < num_vertices and 0 <= b < num_vertices):
                raise InvalidParameterError(
                    f"edge {index} = ({a}, {b}) has an out-of-range endpoint"
                )
            self._edges.append((int(a), int(b)))

    @property
    def n(self) -> int:
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the underlying graph."""
        return self._num_vertices

    def edge(self, element: Element) -> Tuple[int, int]:
        """Return the endpoints of edge ``element``."""
        return self._edges[element]

    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = set(subset)
        if any(e < 0 or e >= self.n for e in members):
            return False
        forest = _UnionFind(self._num_vertices)
        for element in members:
            a, b = self._edges[element]
            if a == b or not forest.union(a, b):
                return False
        return True

    def rank(self, subset: Optional[Iterable[Element]] = None) -> int:
        members = range(self.n) if subset is None else set(subset)
        forest = _UnionFind(self._num_vertices)
        count = 0
        for element in members:
            a, b = self._edges[element]
            if a != b and forest.union(a, b):
                count += 1
        return count
