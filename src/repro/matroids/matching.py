"""Bipartite maximum matching (Hopcroft–Karp).

Both the transversal matroid's independence oracle and the Brualdi exchange
bijection reduce to maximum bipartite matching.  The implementation is
self-contained (no networkx dependency) and runs in ``O(E sqrt(V))``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence

INFINITY = float("inf")


def hopcroft_karp(
    adjacency: Mapping[int, Sequence[int]],
    num_left: int,
    num_right: int,
) -> Dict[int, int]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side vertices adjacent to left vertex
        ``u``.  Left vertices are ``0..num_left-1``, right vertices are
        ``0..num_right-1`` (separate index spaces).
    num_left, num_right:
        Sizes of the two sides.

    Returns
    -------
    dict
        Mapping from matched left vertex to its right partner.
    """
    match_left: List[Optional[int]] = [None] * num_left
    match_right: List[Optional[int]] = [None] * num_right
    distances: List[float] = [INFINITY] * num_left

    def bfs() -> bool:
        queue = deque()
        for u in range(num_left):
            if match_left[u] is None:
                distances[u] = 0.0
                queue.append(u)
            else:
                distances[u] = INFINITY
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                partner = match_right[v]
                if partner is None:
                    found_augmenting = True
                elif distances[partner] == INFINITY:
                    distances[partner] = distances[u] + 1
                    queue.append(partner)
        return found_augmenting

    def dfs(u: int) -> bool:
        for v in adjacency.get(u, ()):
            partner = match_right[v]
            if partner is None or (
                distances[partner] == distances[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distances[u] = INFINITY
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in enumerate(match_left) if v is not None}


def maximum_bipartite_matching(
    adjacency: Mapping[int, Sequence[int]],
    num_left: int,
    num_right: int,
) -> int:
    """Return the size of a maximum matching (convenience wrapper)."""
    return len(hopcroft_karp(adjacency, num_left, num_right))
