"""Brualdi's basis-exchange bijection (Lemma 2 of the paper).

For any two bases ``X`` and ``Y`` of a matroid there is a bijection
``g : X - Y -> Y - X`` such that ``X - x + g(x)`` is again a basis for every
``x``.  Theorem 2's analysis charges each local-search swap against this
bijection; the library exposes it so property tests can verify the lemma on
the concrete matroid families and so users can inspect the certificates.

The bijection is computed as a perfect matching in the bipartite "exchange
graph" with an edge ``(x, y)`` whenever ``X - x + y`` is independent; Brualdi's
theorem guarantees a perfect matching exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro._types import Element
from repro.exceptions import MatroidError, NotIndependentError
from repro.matroids.base import Matroid
from repro.matroids.matching import hopcroft_karp


def exchange_bijection(
    matroid: Matroid,
    from_basis: Iterable[Element],
    to_basis: Iterable[Element],
) -> Dict[Element, Element]:
    """Return a bijection ``g`` with ``from_basis - x + g(x)`` independent for all x.

    Parameters
    ----------
    matroid:
        The matroid both sets are bases of.
    from_basis, to_basis:
        Two bases (same cardinality, both independent).

    Returns
    -------
    dict
        Mapping from each ``x ∈ from_basis - to_basis`` to a distinct
        ``y ∈ to_basis - from_basis``.
    """
    source = frozenset(from_basis)
    target = frozenset(to_basis)
    if not matroid.is_independent(source):
        raise NotIndependentError("from_basis is not independent")
    if not matroid.is_independent(target):
        raise NotIndependentError("to_basis is not independent")
    if len(source) != len(target):
        raise MatroidError(
            "exchange bijection requires bases of equal cardinality: "
            f"{len(source)} vs {len(target)}"
        )
    only_source: List[Element] = sorted(source - target)
    only_target: List[Element] = sorted(target - source)
    if not only_source:
        return {}
    adjacency = {}
    for i, x in enumerate(only_source):
        neighbors = []
        without_x = source - {x}
        for j, y in enumerate(only_target):
            if matroid.is_independent(without_x | {y}):
                neighbors.append(j)
        adjacency[i] = neighbors
    matching = hopcroft_karp(adjacency, len(only_source), len(only_target))
    if len(matching) != len(only_source):
        raise MatroidError(
            "no perfect exchange matching found; the independence oracle is "
            "not a matroid (Brualdi's theorem guarantees one for matroids)"
        )
    return {only_source[i]: only_target[j] for i, j in matching.items()}
