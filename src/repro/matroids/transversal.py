"""Transversal matroids.

Given a collection ``C_1, ..., C_m`` of (possibly overlapping) subsets of the
universe, a set ``S`` is independent iff its elements can be matched to
distinct sets ``C_i`` containing them — i.e. ``S`` is a partial system of
distinct representatives.  The paper motivates this with database tuples that
must each represent a different source collection.

Independence is decided by maximum bipartite matching (Hopcroft–Karp).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.matroids.base import Matroid
from repro.matroids.matching import hopcroft_karp


class TransversalMatroid(Matroid):
    """The transversal matroid induced by a collection of subsets.

    Parameters
    ----------
    n:
        Size of the universe.
    collections:
        Sequence of element subsets ``C_1, ..., C_m``.
    """

    def __init__(self, n: int, collections: Sequence[Iterable[Element]]) -> None:
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        self._n = int(n)
        self._collections: List[FrozenSet[Element]] = []
        for index, collection in enumerate(collections):
            members = frozenset(collection)
            for element in members:
                if element < 0 or element >= n:
                    raise InvalidParameterError(
                        f"collection {index} contains out-of-range element {element}"
                    )
            self._collections.append(members)
        # element -> indices of collections containing it
        self._memberships: Dict[Element, List[int]] = {e: [] for e in range(self._n)}
        for index, members in enumerate(self._collections):
            for element in members:
                self._memberships[element].append(index)

    @property
    def n(self) -> int:
        return self._n

    @property
    def collections(self) -> Sequence[FrozenSet[Element]]:
        """The defining collection of subsets."""
        return tuple(self._collections)

    def is_independent(self, subset: Iterable[Element]) -> bool:
        members = list(dict.fromkeys(subset))
        if any(e < 0 or e >= self._n for e in members):
            return False
        if not members:
            return True
        adjacency = {
            i: self._memberships[element] for i, element in enumerate(members)
        }
        if any(not neighbors for neighbors in adjacency.values()):
            return False
        matching = hopcroft_karp(adjacency, len(members), len(self._collections))
        return len(matching) == len(members)

    def representatives(
        self, subset: Iterable[Element]
    ) -> Optional[Dict[Element, int]]:
        """Return a matching element -> collection index certifying independence.

        Returns ``None`` when the subset is dependent.
        """
        members = list(dict.fromkeys(subset))
        adjacency = {
            i: self._memberships.get(element, []) for i, element in enumerate(members)
        }
        matching = hopcroft_karp(adjacency, len(members), len(self._collections))
        if len(matching) != len(members):
            return None
        return {members[i]: collection for i, collection in matching.items()}
