"""The Appendix's bad instance for the greedy algorithm under a matroid constraint.

The paper shows Greedy B has an *unbounded* approximation ratio once the
constraint is a general (here: partition) matroid, which is why Section 5
switches to local search.  The instance:

* universe split into ``A = {a, b}`` (capacity 1) and ``C = {c_1, ..., c_r}``
  (no cardinality bound),
* quality ``q(a) = ℓ + ε`` and 0 elsewhere,
* distances ``d(b, x) = ℓ`` for every ``x``, and ``ε`` between any other pair.

Greedy picks ``a`` (or the pair containing ``a``) and ends with value about
``ℓ``, while the optimum takes ``b`` and collects ``r·ℓ``.  The builder below
materializes the instance and the helper runs greedy, local search and the
exact optimum on it so the benchmark can report the observed ratios.

The stated distances do form a metric (every triangle mixes ε and ℓ edges in
a way that keeps the inequality), so the example shows the failure is caused
purely by the constraint structure, not by a degenerate distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.greedy import greedy_diversify
from repro.core.local_search import local_search_diversify
from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.matrix import DistanceMatrix


@dataclass(frozen=True)
class AppendixInstance:
    """The constructed bad instance.

    Elements: index 0 is ``a``, index 1 is ``b``, indices ``2 .. r+1`` are the
    ``c_i``.  Block "A" = {a, b} with capacity 1; block "C" = the rest with
    capacity r.
    """

    objective: Objective
    matroid: PartitionMatroid
    r: int
    ell: float
    epsilon: float

    @property
    def greedy_trap_value(self) -> float:
        """The approximate value greedy is drawn to (taking ``a``)."""
        return (
            self.ell
            + self.epsilon
            + self.epsilon * (self.r * (self.r - 1) / 2)
            + self.r * self.epsilon
        )

    @property
    def optimal_like_value(self) -> float:
        """The value of the intended optimum (taking ``b`` and all of C)."""
        return self.r * self.ell + self.epsilon * (self.r * (self.r - 1) / 2)


def appendix_bad_instance(
    r: int = 20, *, ell: float = 1.0, epsilon: float | None = None
) -> AppendixInstance:
    """Build the Appendix's partition-matroid instance.

    Parameters
    ----------
    r:
        Number of ``c_i`` elements; the greedy ratio degrades as ``r`` grows.
    ell:
        The large distance/quality scale ℓ.
    epsilon:
        The small constant; defaults to the paper's ``1 / C(r, 2)``.
    """
    if r < 2:
        raise InvalidParameterError("r must be at least 2")
    if ell <= 0:
        raise InvalidParameterError("ell must be positive")
    if epsilon is None:
        epsilon = 1.0 / (r * (r - 1) / 2.0)
    if epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")

    n = r + 2
    a, b = 0, 1
    weights = np.zeros(n)
    weights[a] = ell + epsilon

    distances = np.full((n, n), epsilon, dtype=float)
    distances[b, :] = ell
    distances[:, b] = ell
    np.fill_diagonal(distances, 0.0)

    quality = ModularFunction(weights)
    metric = DistanceMatrix(distances)
    objective = Objective(quality, metric, tradeoff=1.0)

    blocks = ["A", "A"] + ["C"] * r
    matroid = PartitionMatroid(blocks, {"A": 1, "C": r})
    return AppendixInstance(
        objective=objective,
        matroid=matroid,
        r=r,
        ell=float(ell),
        epsilon=float(epsilon),
    )


def run_appendix_comparison(instance: AppendixInstance) -> Dict[str, float]:
    """Run greedy (restricted to feasibility) and local search on the bad instance.

    Greedy B has no native matroid support (that is the point of the
    Appendix), so it is run with cardinality ``r + 1`` and then truncated to a
    maximal independent prefix of its insertion order — the natural
    "greedy until infeasible" adaptation.
    """
    objective = instance.objective
    matroid = instance.matroid
    greedy_full = greedy_diversify(objective, matroid.rank() + 1)
    feasible: list = []
    for element in greedy_full.order:
        if matroid.is_independent(set(feasible) | {element}):
            feasible.append(element)
    greedy_value = objective.value(feasible)

    local = local_search_diversify(objective, matroid)
    reference = instance.optimal_like_value
    return {
        "greedy_value": greedy_value,
        "local_search_value": local.objective_value,
        "reference_optimum": reference,
        "greedy_ratio": reference / max(greedy_value, 1e-12),
        "local_search_ratio": reference / max(local.objective_value, 1e-12),
    }
