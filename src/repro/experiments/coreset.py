"""Sharded core-set scaling scenario: huge universes without the O(n²) matrix.

The production workload the sharding layer targets: a corpus of feature
vectors far beyond matrix scale, solved by partitioning into shards, solving
each shard on lazy per-shard state, and running the final algorithm on the
union of shard winners (:func:`~repro.core.sharding.solve_sharded`).

The scenario reports, per shard count,

* the wall time of the sharded pipeline vs the global (unsharded) greedy,
* the core-set size the final stage actually saw, and
* the **parity ratio** — sharded objective / global-greedy objective.  The
  composable core-set argument predicts this stays near 1; the benchmark
  suite guards ≥ 0.95.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.core.sharding import solve_sharded
from repro.data.synthetic import make_feature_instance
from repro.experiments.tables import TableResult
from repro.utils.rng import SeedLike


def coreset(
    n: int = 50_000,
    p: int = 20,
    shard_counts: Sequence[int] = (8, 32, 128),
    dimension: int = 8,
    tradeoff: float = 0.5,
    algorithm: str = "greedy",
    seed: SeedLike = 0,
) -> TableResult:
    """Benchmark sharded core-set solving against the global greedy.

    Parameters
    ----------
    n, p, dimension:
        Corpus size, cardinality constraint, and feature dimensionality.
    shard_counts:
        Shard counts to sweep.
    tradeoff, algorithm, seed:
        Instance parameters; ``algorithm`` is the final-stage algorithm run
        on the core-set union.
    """
    instance = make_feature_instance(
        n, dimension=dimension, tradeoff=tradeoff, seed=seed
    )
    quality, metric = instance.quality, instance.metric
    objective = Objective(quality, metric, tradeoff)

    started = time.perf_counter()
    baseline = greedy_diversify(objective, p)
    baseline_seconds = time.perf_counter() - started

    result = TableResult(
        name=(
            f"Sharded core-set solving: n={n}, d={dimension}, p={p}, "
            f"final algorithm={algorithm} "
            f"(global greedy {baseline_seconds * 1e3:.1f} ms)"
        ),
        headers=[
            "Shards",
            "Core size",
            "Sharded (ms)",
            "Global greedy (ms)",
            "Parity",
        ],
    )
    for shards in shard_counts:
        started = time.perf_counter()
        sharded = solve_sharded(
            quality,
            metric,
            tradeoff=tradeoff,
            p=p,
            shards=shards,
            algorithm=algorithm,
        )
        sharded_seconds = time.perf_counter() - started
        result.records.append(
            {
                "Shards": shards,
                "Core size": sharded.metadata["sharding"]["core_size"],
                "Sharded (ms)": round(sharded_seconds * 1e3, 1),
                "Global greedy (ms)": round(baseline_seconds * 1e3, 1),
                "Parity": round(
                    sharded.objective_value / baseline.objective_value, 4
                ),
            }
        )
    return result
