"""Experiment harness reproducing Section 7 of the paper.

Each ``table*`` / ``figure1`` function regenerates the corresponding table or
figure of the paper on synthetic stand-in data and returns both the raw rows
and a formatted text rendering, so the benchmark targets in ``benchmarks/``
and the ``EXPERIMENTS.md`` record are produced by the same code path.
"""

from repro.experiments.appendix import appendix_bad_instance
from repro.experiments.dynamic_fig import figure1
from repro.experiments.harness import (
    ComparisonRow,
    TrialAggregate,
    aggregate_trials,
    compare_algorithms,
)
from repro.experiments.reporting import format_table, rows_to_markdown
from repro.experiments.tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

__all__ = [
    "ComparisonRow",
    "TrialAggregate",
    "compare_algorithms",
    "aggregate_trials",
    "format_table",
    "rows_to_markdown",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "figure1",
    "appendix_bad_instance",
]
