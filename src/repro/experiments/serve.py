"""Serving load experiment: concurrent clients over one prepared corpus.

The end-to-end scenario the serving tier exists for: a fixed corpus is
prepared once (:class:`~repro.serve.corpus.PreparedCorpus`), an async
:class:`~repro.serve.server.Server` fronts it, and many concurrent clients
submit pool-restricted queries that the server coalesces into micro-batch
windows.  The report records sustained QPS, p50/p99 latency, mean window
size, and the restriction-cache hit rate — the same numbers the load
benchmark in ``benchmarks/test_perf_serve.py`` guards.

Run it via ``python -m repro.experiments serve [--quick]``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from typing import Optional

from repro.data.synthetic import make_feature_instance
from repro.exceptions import InvalidParameterError, ServerOverloadedError
from repro.experiments.tables import TableResult
from repro.serve.corpus import PreparedCorpus
from repro.serve.server import Server
from repro.utils.rng import SeedLike, make_rng


async def _drive_load(
    server: Server,
    pools,
    *,
    queries_per_client: int,
    p: int,
    deadline_s: Optional[float],
) -> int:
    """Run one coroutine per client; return the number of completed queries."""

    async def client(client_pools) -> int:
        done = 0
        for pool in client_pools:
            while True:
                try:
                    await server.submit(pool, p=p, deadline_s=deadline_s)
                except ServerOverloadedError:
                    # Shed by the admission bound: back off and retry, the
                    # way a production client would.
                    await asyncio.sleep(0.002)
                    continue
                break
            done += 1
        return done

    totals = await asyncio.gather(
        *(client(pools[i]) for i in range(len(pools)))
    )
    return sum(totals)


def serve(
    n: int = 50_000,
    clients: int = 32,
    queries_per_client: int = 8,
    pool_size: int = 256,
    p: int = 10,
    dimension: int = 8,
    hot_pools: int = 8,
    max_batch_size: int = 32,
    max_wait_s: float = 0.002,
    deadline_s: Optional[float] = None,
    shard_size: Optional[int] = None,
    max_pending: Optional[int] = None,
    durable_snapshot: bool = False,
    trace_path: Optional[str] = None,
    seed: SeedLike = 0,
) -> TableResult:
    """Benchmark the serving tier under concurrent client load.

    Parameters
    ----------
    n, dimension:
        Corpus size and feature dimension (lazy Euclidean metric — O(n·d)
        memory, so ``n`` can be large).
    clients, queries_per_client, pool_size, p:
        Load shape: concurrent client coroutines, sequential queries each,
        per-query candidate-pool size, and the cardinality constraint.
    hot_pools:
        Size of a shared pool set clients draw from (with replacement) for
        half their queries — exercising the restriction-view LRU cache the
        way repeated production queries do.  The other half are unique pools.
    max_batch_size, max_wait_s:
        Server micro-batching knobs.
    deadline_s:
        Optional per-request deadline, anchored at submission.
    shard_size:
        When given, the corpus shards full-universe queries; pool queries are
        unaffected.
    max_pending:
        Optional admission bound: requests beyond this many pending are shed
        with :class:`~repro.exceptions.ServerOverloadedError` instead of
        queueing without bound (the experiment retries sheds after a short
        backoff, so the table also shows how much load the bound rejected).
    durable_snapshot:
        Serve from a recovered corpus instead of the freshly prepared one:
        round-trip the corpus through a checksummed durable snapshot
        (``PreparedCorpus.save(durable=True)`` → ``PreparedCorpus.load``)
        before the server starts — the handoff a serving process restarting
        after a crash performs.
    trace_path:
        When given, the run records per-window spans
        (:class:`~repro.obs.trace.Trace`) and writes Chrome-trace JSON there
        — open it in ``chrome://tracing`` or Perfetto.  This is what
        ``python -m repro.experiments serve --trace out.json`` passes.
    seed:
        Load-generator seed.
    """
    if pool_size > n:
        raise InvalidParameterError("pool_size cannot exceed the corpus size")
    if clients < 1 or queries_per_client < 1:
        raise InvalidParameterError("need at least one client and one query")
    instance = make_feature_instance(n, dimension=dimension, seed=seed)
    corpus = PreparedCorpus(
        instance.quality,
        instance.metric,
        tradeoff=instance.tradeoff,
        shard_size=shard_size,
    )
    if durable_snapshot:
        # Crash-restart handoff: persist a checksummed framed snapshot and
        # serve from the recovered corpus, not the in-memory original.
        handle, path = tempfile.mkstemp(suffix=".snap", prefix="repro-corpus-")
        os.close(handle)
        try:
            corpus.save(path, durable=True)
            corpus = PreparedCorpus.load(path)
        finally:
            os.unlink(path)
    rng = make_rng(seed)
    shared = [
        rng.choice(n, size=pool_size, replace=False).tolist()
        for _ in range(max(1, hot_pools))
    ]
    pools = []
    for _ in range(clients):
        client_pools = []
        for q in range(queries_per_client):
            if q % 2 == 0:
                client_pools.append(shared[int(rng.integers(len(shared)))])
            else:
                client_pools.append(
                    rng.choice(n, size=pool_size, replace=False).tolist()
                )
        pools.append(client_pools)

    trace = None
    if trace_path is not None:
        from repro.obs.trace import Trace

        trace = Trace()

    async def run() -> dict:
        async with Server(
            corpus,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            max_pending=max_pending,
            trace=trace,
        ) as server:
            completed = await _drive_load(
                server,
                pools,
                queries_per_client=queries_per_client,
                p=p,
                deadline_s=deadline_s,
            )
            stats = server.stats.snapshot()
        stats["driven"] = completed
        return stats

    stats = asyncio.run(run())
    if trace is not None:
        trace.export(trace_path)
    cache = corpus.cache_info()
    lookups = cache["hits"] + cache["misses"]

    result = TableResult(
        name=(
            f"Serving load: {clients} clients x {queries_per_client} queries, "
            f"corpus n={n} ({'sharded' if corpus.sharded else 'unsharded'}, "
            f"{'matrix' if corpus.materialized else 'lazy'} tier), "
            f"pools of {pool_size}, p={p}"
        ),
        headers=[
            "Queries",
            "Shed",
            "Windows",
            "Mean window",
            "QPS",
            "p50 (ms)",
            "p99 (ms)",
            "Cache hit rate",
        ],
    )
    result.records.append(
        {
            "Queries": int(stats["completed"]),
            "Shed": int(stats["shed"]),
            "Windows": int(stats["windows"]),
            "Mean window": round(stats["mean_window_size"], 2),
            "QPS": round(stats["qps"], 1),
            "p50 (ms)": round(stats["p50_ms"], 2),
            "p99 (ms)": round(stats["p99_ms"], 2),
            "Cache hit rate": round(cache["hits"] / lookups, 3) if lookups else 0.0,
        }
    )
    return result
