"""Plain-text and Markdown rendering of experiment tables.

The benchmark harness prints the same rows the paper's tables report; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _format_cell(value, *, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [
        [_format_cell(cell, precision=precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_to_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    precision: int = 3,
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    rendered_rows = [
        [_format_cell(cell, precision=precision) for cell in row] for row in rows
    ]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rendered_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def dict_rows(
    records: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> Sequence[Sequence]:
    """Project a list of dict records onto an ordered column list."""
    return [[record.get(column) for column in columns] for record in records]
