"""Multi-query serving benchmark: many candidate pools over one shared corpus.

The production workload the restriction layer targets: one corpus instance
(weights + distances) serves a stream of queries, each restricted to its own
candidate pool.  This scenario compares

* **naive** — one :func:`~repro.core.solver.solve` per query on a freshly
  materialized sub-instance (what a caller without the restriction layer
  writes: re-materialize the submatrix through the validating constructor and
  re-derive the weight slice per query), against
* **batched** — :func:`~repro.core.batch.solve_many`, which prepares the
  shared matrix view and weight vector once and restricts per query.

Both must return identical selections; the report records the wall-clock
ratio per algorithm.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.batch import solve_many
from repro.core.solver import solve
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.experiments.tables import TableResult
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix
from repro.utils.rng import SeedLike, make_rng


def multiquery(
    n: int = 2000,
    num_queries: int = 64,
    pool_size: int = 200,
    p: int = 10,
    algorithms: Sequence[str] = ("greedy", "greedy_a", "mmr"),
    tradeoff: float = 0.2,
    seed: SeedLike = 0,
) -> TableResult:
    """Benchmark batched vs naive multi-query solving on a synthetic corpus.

    Parameters
    ----------
    n, num_queries, pool_size, p:
        Corpus size, number of queries, per-query candidate-pool size, and
        the per-query cardinality constraint.
    algorithms:
        Which :data:`~repro.core.solver.ALGORITHMS` entries to compare.
    tradeoff, seed:
        Instance parameters (Section 7.1 defaults).
    """
    if pool_size > n:
        raise InvalidParameterError("pool_size cannot exceed the corpus size")
    instance = make_synthetic_instance(n, tradeoff=tradeoff, seed=seed)
    quality, metric = instance.quality, instance.metric
    rng = make_rng(seed)
    pools = [
        rng.choice(n, size=pool_size, replace=False).tolist()
        for _ in range(num_queries)
    ]

    result = TableResult(
        name=(
            f"Multi-query serving: {num_queries} queries, corpus n={n}, "
            f"pools of {pool_size}, p={p}"
        ),
        headers=[
            "Algorithm",
            "Naive (ms)",
            "Batched (ms)",
            "Speedup",
            "Identical",
        ],
    )
    for algorithm in algorithms:
        started = time.perf_counter()
        naive = []
        for pool in pools:
            idx = np.asarray(pool, dtype=int)
            sub_metric = DistanceMatrix(metric.to_matrix()[np.ix_(idx, idx)])
            sub_quality = ModularFunction(instance.weights[idx])
            local = solve(
                sub_quality, sub_metric, tradeoff=tradeoff, p=p, algorithm=algorithm
            )
            naive.append(frozenset(pool[e] for e in local.selected))
        naive_seconds = time.perf_counter() - started

        started = time.perf_counter()
        batched = solve_many(
            quality, metric, pools, tradeoff=tradeoff, p=p, algorithm=algorithm
        )
        batched_seconds = time.perf_counter() - started

        identical = [r.selected for r in batched] == naive
        result.records.append(
            {
                "Algorithm": algorithm,
                "Naive (ms)": round(naive_seconds * 1e3, 1),
                "Batched (ms)": round(batched_seconds * 1e3, 1),
                "Speedup": round(naive_seconds / max(batched_seconds, 1e-12), 1),
                "Identical": identical,
            }
        )
    return result
