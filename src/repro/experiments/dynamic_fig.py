"""Reproduction of Figure 1: approximation ratio under dynamic updates.

For each λ and each perturbation environment (V / E / M), start from the
greedy 2-approximation on a synthetic instance, run a fixed number of
perturbation + single-oblivious-update steps, repeat several times, and
record the worst approximation ratio observed.  The paper's observations to
reproduce:

1. the maintained ratio stays well below the provable bound of 3 (worst
   observed ≈ 1.11), and
2. the worst ratio decreases towards 1 as λ grows beyond ≈ 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.data.synthetic import make_synthetic_instance
from repro.dynamic.simulation import Environment, worst_ratio_curve
from repro.experiments.reporting import format_table
from repro.utils.rng import SeedLike, derive_seed

#: λ grid used by the paper's Figure 1 (x axis).
DEFAULT_TRADEOFFS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class Figure1Result:
    """The three worst-ratio curves of Figure 1."""

    tradeoffs: Sequence[float]
    curves: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned text rendering: one row per λ, one column per environment."""
        headers = ["lambda"] + list(self.curves)
        rows: List[List[object]] = []
        for tradeoff in self.tradeoffs:
            rows.append(
                [tradeoff] + [self.curves[name].get(tradeoff) for name in self.curves]
            )
        return format_table(
            headers, rows, title="Figure 1: worst ratio under dynamic updates"
        )

    def worst_overall(self) -> float:
        """The single worst ratio across all environments and λ values."""
        return max(
            (ratio for curve in self.curves.values() for ratio in curve.values()),
            default=1.0,
        )


def figure1(
    *,
    n: int = 20,
    p: int = 5,
    tradeoffs: Sequence[float] = DEFAULT_TRADEOFFS,
    steps: int = 20,
    repeats: int = 100,
    environments: Sequence[Environment] = (
        Environment.VPERTURBATION,
        Environment.EPERTURBATION,
        Environment.MPERTURBATION,
    ),
    seed: SeedLike = 2019,
    batched: bool = False,
) -> Figure1Result:
    """Reproduce Figure 1's worst-approximation-ratio curves.

    The ratio computation is exact (brute force / branch-and-bound), so the
    defaults use a smaller universe than Section 7.1's N = 50 to keep the
    per-step optimum affordable; the qualitative shape (ratio well below 3,
    decreasing in λ) is unchanged.  Pass ``n=50`` to match the paper exactly
    at a higher cost.  ``batched=True`` drives the same trajectories through
    the event-batch tick path of :class:`~repro.dynamic.session.DynamicSession`
    (identical curves; exercises the batched engine under Figure 1's load).
    """
    instance = make_synthetic_instance(n, seed=derive_seed(seed, 0))
    result = Figure1Result(tradeoffs=tuple(tradeoffs))
    for index, environment in enumerate(environments):
        curve = worst_ratio_curve(
            instance.weights,
            instance.distances,
            p,
            tradeoffs,
            environment,
            steps=steps,
            repeats=repeats,
            seed=derive_seed(seed, index + 1),
            batched=batched,
        )
        result.curves[environment.value] = curve
    return result
