"""Shared experiment plumbing.

The paper's Section 7 methodology: for each parameter setting run several
trials (5 on synthetic data), average each algorithm's objective value, and
report

* ``AF_ALG          = OPT-average / ALG-average``  (when OPT is computable),
* ``AF_{ALG2/ALG1}  = ALG1-average / ALG2-average`` ("relative average
  approximation"; values > 1 mean ALG2 is better),
* average elapsed milliseconds per algorithm.

:func:`compare_algorithms` runs one (instance, p) cell; :func:`aggregate_trials`
averages a list of such cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.core.objective import Objective
from repro.core.result import SolverResult
from repro.exceptions import InvalidParameterError

#: A named algorithm: a callable from (objective, p) to a SolverResult.
AlgorithmRunner = Callable[[Objective, int], SolverResult]


@dataclass(frozen=True)
class ComparisonRow:
    """One trial's results for one parameter setting.

    Attributes
    ----------
    p:
        The cardinality constraint of the cell.
    values:
        Algorithm name → objective value φ.
    times_ms:
        Algorithm name → elapsed milliseconds.
    selections:
        Algorithm name → selected element tuple (sorted).
    optimal_value:
        The exact optimum when it was computed, else ``None``.
    """

    p: int
    values: Mapping[str, float]
    times_ms: Mapping[str, float]
    selections: Mapping[str, tuple]
    optimal_value: Optional[float] = None

    def approximation_factor(self, algorithm: str) -> Optional[float]:
        """``OPT / ALG`` for one algorithm (``None`` when OPT is unknown)."""
        if self.optimal_value is None:
            return None
        value = self.values[algorithm]
        if value <= 1e-12:
            return None
        return self.optimal_value / value

    def relative_factor(self, better: str, baseline: str) -> Optional[float]:
        """``ALG_baseline-relative factor`` = value(better) / value(baseline)."""
        baseline_value = self.values[baseline]
        if baseline_value <= 1e-12:
            return None
        return self.values[better] / baseline_value


@dataclass
class TrialAggregate:
    """Averages over several :class:`ComparisonRow` trials of one cell."""

    p: int
    mean_values: Dict[str, float] = field(default_factory=dict)
    mean_times_ms: Dict[str, float] = field(default_factory=dict)
    mean_optimal: Optional[float] = None
    trials: int = 0

    def approximation_factor(self, algorithm: str) -> Optional[float]:
        """``OPT-average / ALG-average`` (the paper's AF)."""
        if self.mean_optimal is None:
            return None
        value = self.mean_values.get(algorithm, 0.0)
        if value <= 1e-12:
            return None
        return self.mean_optimal / value

    def relative_factor(self, better: str, baseline: str) -> Optional[float]:
        """``AF_{better/baseline}`` = mean(better) / mean(baseline)."""
        baseline_value = self.mean_values.get(baseline, 0.0)
        if baseline_value <= 1e-12:
            return None
        return self.mean_values[better] / baseline_value

    def time_ratio(self, slow: str, fast: str) -> Optional[float]:
        """``Time_slow / Time_fast`` (the paper's last column in Tables 2/5/7)."""
        fast_time = self.mean_times_ms.get(fast, 0.0)
        if fast_time <= 0:
            return None
        return self.mean_times_ms[slow] / fast_time


def compare_algorithms(
    objective: Objective,
    p: int,
    algorithms: Mapping[str, AlgorithmRunner],
    *,
    compute_optimal: Optional[Callable[[Objective, int], SolverResult]] = None,
) -> ComparisonRow:
    """Run every algorithm on one instance and collect one comparison row."""
    if not algorithms:
        raise InvalidParameterError("at least one algorithm is required")
    values: Dict[str, float] = {}
    times: Dict[str, float] = {}
    selections: Dict[str, tuple] = {}
    for name, runner in algorithms.items():
        result = runner(objective, p)
        values[name] = result.objective_value
        times[name] = result.elapsed_ms
        selections[name] = tuple(result.sorted_elements())
    optimal_value = None
    if compute_optimal is not None:
        optimal_value = compute_optimal(objective, p).objective_value
    return ComparisonRow(
        p=p,
        values=values,
        times_ms=times,
        selections=selections,
        optimal_value=optimal_value,
    )


def aggregate_trials(rows: Sequence[ComparisonRow]) -> TrialAggregate:
    """Average a list of trials (all for the same ``p``)."""
    if not rows:
        raise InvalidParameterError("cannot aggregate zero trials")
    p_values = {row.p for row in rows}
    if len(p_values) != 1:
        raise InvalidParameterError(
            f"all trials must share the same p; got {sorted(p_values)}"
        )
    aggregate = TrialAggregate(p=rows[0].p, trials=len(rows))
    algorithm_names = rows[0].values.keys()
    for name in algorithm_names:
        aggregate.mean_values[name] = sum(row.values[name] for row in rows) / len(rows)
        aggregate.mean_times_ms[name] = sum(
            row.times_ms[name] for row in rows
        ) / len(rows)
    optima = [row.optimal_value for row in rows if row.optimal_value is not None]
    if optima and len(optima) == len(rows):
        aggregate.mean_optimal = sum(optima) / len(optima)
    return aggregate
