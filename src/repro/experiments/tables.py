"""Reproduction of the paper's Tables 1–8 (Section 7).

Every function returns a :class:`TableResult` containing the raw per-``p``
records and a formatted text rendering matching the paper's columns.  All
sizes are parameters so the pytest-benchmark targets can use scaled-down
workloads while the paper-scale settings remain one call away; the defaults
are the paper's settings.

The LETOR tables use the synthetic LETOR-like corpus
(:class:`repro.data.letor.SyntheticLetorCorpus`) — see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.baselines import gollapudi_sharma_greedy
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.local_search import refine_with_local_search
from repro.core.objective import Objective
from repro.core.result import SolverResult
from repro.data.letor import SyntheticLetorCorpus
from repro.data.synthetic import PAPER_SYNTHETIC_TRADEOFF, make_synthetic_instance
from repro.experiments.harness import aggregate_trials, compare_algorithms
from repro.experiments.reporting import format_table
from repro.utils.rng import SeedLike, derive_seed

#: Default p values for the small-universe (OPT-computable) tables.
SMALL_P_VALUES = (3, 4, 5, 6, 7)

#: Default p values for the large-universe tables (Tables 2, 5, 7).
LARGE_P_VALUES = tuple(range(5, 80, 5))


@dataclass
class TableResult:
    """A reproduced table: raw records plus a text rendering."""

    name: str
    headers: Sequence[str]
    records: List[Dict[str, object]] = field(default_factory=list)

    def rows(self) -> List[List[object]]:
        """Project the records onto the header order."""
        return [[record.get(h) for h in self.headers] for record in self.records]

    def render(self) -> str:
        """Aligned plain-text rendering (what the bench targets print)."""
        return format_table(self.headers, self.rows(), title=self.name)


# ----------------------------------------------------------------------
# Algorithm bundles
# ----------------------------------------------------------------------
def _greedy_a(improved: bool = False) -> Callable[[Objective, int], SolverResult]:
    def run(objective: Objective, p: int) -> SolverResult:
        return gollapudi_sharma_greedy(objective, p, improved=improved)

    return run


def _greedy_b(start: str = "potential") -> Callable[[Objective, int], SolverResult]:
    def run(objective: Objective, p: int) -> SolverResult:
        return greedy_diversify(objective, p, start=start)

    return run


def _greedy_b_then_ls(
    time_budget_multiple: float = 10.0,
) -> Callable[[Objective, int], SolverResult]:
    def run(objective: Objective, p: int) -> SolverResult:
        seed = greedy_diversify(objective, p)
        return refine_with_local_search(
            objective, seed, p=p, time_budget_multiple=time_budget_multiple
        )

    return run


def _exact(objective: Objective, p: int) -> SolverResult:
    return exact_diversify(objective, p)


# ----------------------------------------------------------------------
# Synthetic tables (Section 7.1)
# ----------------------------------------------------------------------
def _synthetic_objectives(
    n: int, trials: int, tradeoff: float, seed: SeedLike
) -> List[Objective]:
    return [
        make_synthetic_instance(
            n, tradeoff=tradeoff, seed=derive_seed(seed, trial)
        ).objective
        for trial in range(trials)
    ]


def table1(
    *,
    n: int = 50,
    p_values: Sequence[int] = SMALL_P_VALUES,
    trials: int = 5,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    seed: SeedLike = 2012,
) -> TableResult:
    """Table 1: Greedy A vs Greedy B vs OPT on synthetic data (N = 50)."""
    algorithms = {"GreedyA": _greedy_a(), "GreedyB": _greedy_b()}
    objectives = _synthetic_objectives(n, trials, tradeoff, seed)
    table = TableResult(
        name=(
            f"Table 1: Greedy A vs Greedy B "
            f"(N={n}, {trials} trials, lambda={tradeoff})"
        ),
        headers=[
            "p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA", "AF_GreedyB", "AF_B/A"
        ],
    )
    for p in p_values:
        rows = [
            compare_algorithms(objective, p, algorithms, compute_optimal=_exact)
            for objective in objectives
        ]
        aggregate = aggregate_trials(rows)
        table.records.append(
            {
                "p": p,
                "OPT": aggregate.mean_optimal,
                "GreedyA": aggregate.mean_values["GreedyA"],
                "GreedyB": aggregate.mean_values["GreedyB"],
                "AF_GreedyA": aggregate.approximation_factor("GreedyA"),
                "AF_GreedyB": aggregate.approximation_factor("GreedyB"),
                "AF_B/A": aggregate.relative_factor("GreedyB", "GreedyA"),
            }
        )
    return table


def table2(
    *,
    n: int = 500,
    p_values: Sequence[int] = LARGE_P_VALUES,
    trials: int = 5,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    ls_budget_multiple: float = 10.0,
    seed: SeedLike = 2013,
) -> TableResult:
    """Table 2: Greedy A vs Greedy B vs LS with timings on synthetic data (N = 500)."""
    algorithms = {
        "GreedyA": _greedy_a(),
        "GreedyB": _greedy_b(),
        "LS": _greedy_b_then_ls(ls_budget_multiple),
    }
    objectives = _synthetic_objectives(n, trials, tradeoff, seed)
    table = TableResult(
        name=(
            f"Table 2: Greedy A vs Greedy B vs LS "
            f"(N={n}, {trials} trials, lambda={tradeoff})"
        ),
        headers=[
            "p",
            "GreedyA",
            "GreedyB",
            "LS",
            "AF_B/A",
            "AF_LS/B",
            "Time_GreedyA_ms",
            "Time_GreedyB_ms",
            "TimeRatio_A/B",
        ],
    )
    for p in p_values:
        rows = [
            compare_algorithms(objective, p, algorithms) for objective in objectives
        ]
        aggregate = aggregate_trials(rows)
        table.records.append(
            {
                "p": p,
                "GreedyA": aggregate.mean_values["GreedyA"],
                "GreedyB": aggregate.mean_values["GreedyB"],
                "LS": aggregate.mean_values["LS"],
                "AF_B/A": aggregate.relative_factor("GreedyB", "GreedyA"),
                "AF_LS/B": aggregate.relative_factor("LS", "GreedyB"),
                "Time_GreedyA_ms": aggregate.mean_times_ms["GreedyA"],
                "Time_GreedyB_ms": aggregate.mean_times_ms["GreedyB"],
                "TimeRatio_A/B": aggregate.time_ratio("GreedyA", "GreedyB"),
            }
        )
    return table


def table3(
    *,
    n: int = 50,
    p_values: Sequence[int] = SMALL_P_VALUES,
    trials: int = 1,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    seed: SeedLike = 2014,
) -> TableResult:
    """Table 3: *improved* Greedy A vs *improved* Greedy B vs OPT (N = 50, 1 trial)."""
    algorithms = {
        "GreedyA": _greedy_a(improved=True),
        "GreedyB": _greedy_b(start="best_pair"),
    }
    objectives = _synthetic_objectives(n, trials, tradeoff, seed)
    table = TableResult(
        name=(
            f"Table 3: improved Greedy A vs improved Greedy B "
            f"(N={n}, lambda={tradeoff})"
        ),
        headers=[
            "p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA", "AF_GreedyB", "AF_B/A"
        ],
    )
    for p in p_values:
        rows = [
            compare_algorithms(objective, p, algorithms, compute_optimal=_exact)
            for objective in objectives
        ]
        aggregate = aggregate_trials(rows)
        table.records.append(
            {
                "p": p,
                "OPT": aggregate.mean_optimal,
                "GreedyA": aggregate.mean_values["GreedyA"],
                "GreedyB": aggregate.mean_values["GreedyB"],
                "AF_GreedyA": aggregate.approximation_factor("GreedyA"),
                "AF_GreedyB": aggregate.approximation_factor("GreedyB"),
                "AF_B/A": aggregate.relative_factor("GreedyB", "GreedyA"),
            }
        )
    return table


# ----------------------------------------------------------------------
# LETOR-like tables (Section 7.2)
# ----------------------------------------------------------------------
def _default_corpus(
    *, num_queries: int, docs_per_query: int, seed: SeedLike
) -> SyntheticLetorCorpus:
    return SyntheticLetorCorpus(
        num_queries=num_queries, docs_per_query=docs_per_query, seed=seed
    )


def table4(
    *,
    top_k: int = 50,
    p_values: Sequence[int] = SMALL_P_VALUES,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    corpus: Optional[SyntheticLetorCorpus] = None,
    query_id: int = 0,
    seed: SeedLike = 2015,
) -> TableResult:
    """Table 4: Greedy A vs Greedy B vs OPT on one LETOR-like query (top-50 docs)."""
    corpus = corpus or _default_corpus(
        num_queries=1, docs_per_query=max(top_k, 50), seed=seed
    )
    query = corpus.query(query_id).top_documents(top_k)
    objective = query.objective(tradeoff)
    algorithms = {"GreedyA": _greedy_a(), "GreedyB": _greedy_b()}
    table = TableResult(
        name=(
            f"Table 4: Greedy A vs Greedy B on LETOR-like data "
            f"(top {top_k} documents)"
        ),
        headers=[
            "p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA", "AF_GreedyB", "AF_B/A"
        ],
    )
    for p in p_values:
        row = compare_algorithms(objective, p, algorithms, compute_optimal=_exact)
        aggregate = aggregate_trials([row])
        table.records.append(
            {
                "p": p,
                "OPT": aggregate.mean_optimal,
                "GreedyA": aggregate.mean_values["GreedyA"],
                "GreedyB": aggregate.mean_values["GreedyB"],
                "AF_GreedyA": aggregate.approximation_factor("GreedyA"),
                "AF_GreedyB": aggregate.approximation_factor("GreedyB"),
                "AF_B/A": aggregate.relative_factor("GreedyB", "GreedyA"),
            }
        )
    return table


def table5(
    *,
    top_k: int = 370,
    p_values: Sequence[int] = LARGE_P_VALUES,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    ls_budget_multiple: float = 10.0,
    corpus: Optional[SyntheticLetorCorpus] = None,
    query_id: int = 0,
    seed: SeedLike = 2016,
) -> TableResult:
    """Table 5: Greedy A vs Greedy B vs LS on one LETOR-like query (top-370 docs)."""
    corpus = corpus or _default_corpus(
        num_queries=1, docs_per_query=max(top_k, 370), seed=seed
    )
    query = corpus.query(query_id).top_documents(top_k)
    objective = query.objective(tradeoff)
    algorithms = {
        "GreedyA": _greedy_a(),
        "GreedyB": _greedy_b(),
        "LS": _greedy_b_then_ls(ls_budget_multiple),
    }
    table = TableResult(
        name=(
            f"Table 5: Greedy A vs Greedy B vs LS on LETOR-like data "
            f"(top {top_k} documents)"
        ),
        headers=[
            "p",
            "GreedyA",
            "GreedyB",
            "LS",
            "AF_B/A",
            "AF_LS/B",
            "Time_GreedyA_ms",
            "Time_GreedyB_ms",
            "TimeRatio_A/B",
        ],
    )
    for p in p_values:
        row = compare_algorithms(objective, p, algorithms)
        aggregate = aggregate_trials([row])
        table.records.append(
            {
                "p": p,
                "GreedyA": aggregate.mean_values["GreedyA"],
                "GreedyB": aggregate.mean_values["GreedyB"],
                "LS": aggregate.mean_values["LS"],
                "AF_B/A": aggregate.relative_factor("GreedyB", "GreedyA"),
                "AF_LS/B": aggregate.relative_factor("LS", "GreedyB"),
                "Time_GreedyA_ms": aggregate.mean_times_ms["GreedyA"],
                "Time_GreedyB_ms": aggregate.mean_times_ms["GreedyB"],
                "TimeRatio_A/B": aggregate.time_ratio("GreedyA", "GreedyB"),
            }
        )
    return table


def table6(
    *,
    num_queries: int = 5,
    top_k: int = 50,
    p_values: Sequence[int] = SMALL_P_VALUES,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    corpus: Optional[SyntheticLetorCorpus] = None,
    seed: SeedLike = 2017,
) -> TableResult:
    """Table 6: approximation factors averaged over several LETOR-like queries (top-50)."""
    corpus = corpus or _default_corpus(
        num_queries=num_queries, docs_per_query=max(top_k, 50), seed=seed
    )
    algorithms = {"GreedyA": _greedy_a(), "GreedyB": _greedy_b()}
    table = TableResult(
        name=(
            f"Table 6: averaged over {corpus.num_queries} LETOR-like queries "
            f"(top {top_k})"
        ),
        headers=["p", "AF_GreedyA", "AF_GreedyB"],
    )
    for p in p_values:
        rows = []
        for query in corpus.queries():
            objective = query.top_documents(top_k).objective(tradeoff)
            rows.append(
                compare_algorithms(objective, p, algorithms, compute_optimal=_exact)
            )
        factors_a = [row.approximation_factor("GreedyA") for row in rows]
        factors_b = [row.approximation_factor("GreedyB") for row in rows]
        table.records.append(
            {
                "p": p,
                "AF_GreedyA": sum(factors_a) / len(factors_a),
                "AF_GreedyB": sum(factors_b) / len(factors_b),
            }
        )
    return table


def table7(
    *,
    num_queries: int = 5,
    docs_per_query: int = 370,
    p_values: Sequence[int] = LARGE_P_VALUES,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    ls_budget_multiple: float = 10.0,
    corpus: Optional[SyntheticLetorCorpus] = None,
    seed: SeedLike = 2018,
) -> TableResult:
    """Table 7: relative factors and timings averaged over queries (all documents)."""
    corpus = corpus or _default_corpus(
        num_queries=num_queries, docs_per_query=docs_per_query, seed=seed
    )
    algorithms = {
        "GreedyA": _greedy_a(),
        "GreedyB": _greedy_b(),
        "LS": _greedy_b_then_ls(ls_budget_multiple),
    }
    table = TableResult(
        name=(
            f"Table 7: averaged over {corpus.num_queries} LETOR-like queries "
            f"(all documents)"
        ),
        headers=[
            "p",
            "AF_B/A",
            "AF_LS/B",
            "Time_GreedyA_ms",
            "Time_GreedyB_ms",
            "TimeRatio_A/B",
        ],
    )
    for p in p_values:
        rows = []
        for query in corpus.queries():
            objective = query.objective(tradeoff)
            rows.append(compare_algorithms(objective, p, algorithms))
        relative_ba = [row.relative_factor("GreedyB", "GreedyA") for row in rows]
        relative_lsb = [row.relative_factor("LS", "GreedyB") for row in rows]
        time_a = [row.times_ms["GreedyA"] for row in rows]
        time_b = [row.times_ms["GreedyB"] for row in rows]
        table.records.append(
            {
                "p": p,
                "AF_B/A": sum(relative_ba) / len(relative_ba),
                "AF_LS/B": sum(relative_lsb) / len(relative_lsb),
                "Time_GreedyA_ms": sum(time_a) / len(time_a),
                "Time_GreedyB_ms": sum(time_b) / len(time_b),
                "TimeRatio_A/B": (sum(time_a) / len(time_a))
                / max(sum(time_b) / len(time_b), 1e-9),
            }
        )
    return table


def table8(
    *,
    top_k: int = 50,
    p_values: Sequence[int] = SMALL_P_VALUES,
    tradeoff: float = PAPER_SYNTHETIC_TRADEOFF,
    corpus: Optional[SyntheticLetorCorpus] = None,
    query_id: int = 0,
    seed: SeedLike = 2015,
) -> TableResult:
    """Table 8: the document sets returned by Greedy A, Greedy B and OPT.

    The paper's qualitative comparison: for each ``p``, which documents each
    algorithm returns, and how many documents each algorithm's selection has
    in common with the optimum.
    """
    corpus = corpus or _default_corpus(
        num_queries=1, docs_per_query=max(top_k, 50), seed=seed
    )
    query = corpus.query(query_id).top_documents(top_k)
    objective = query.objective(tradeoff)
    table = TableResult(
        name=f"Table 8: documents returned (top {top_k} documents)",
        headers=["p", "GreedyA_docs", "GreedyB_docs", "OPT_docs", "A∩OPT", "B∩OPT"],
    )
    for p in p_values:
        result_a = gollapudi_sharma_greedy(objective, p)
        result_b = greedy_diversify(objective, p)
        result_opt = exact_diversify(objective, p)
        docs_a = tuple(result_a.sorted_elements())
        docs_b = tuple(result_b.sorted_elements())
        docs_opt = tuple(result_opt.sorted_elements())
        table.records.append(
            {
                "p": p,
                "GreedyA_docs": " ".join(map(str, docs_a)),
                "GreedyB_docs": " ".join(map(str, docs_b)),
                "OPT_docs": " ".join(map(str, docs_opt)),
                "A∩OPT": len(set(docs_a) & set(docs_opt)),
                "B∩OPT": len(set(docs_b) & set(docs_opt)),
            }
        )
    return table
