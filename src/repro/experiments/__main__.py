"""Command-line entry point: ``python -m repro.experiments <target>``.

Regenerates one of the paper's tables/figures (or all of them) and prints the
rendered rows — the same code path the benchmark harness uses.

Examples
--------
```
python -m repro.experiments table1
python -m repro.experiments table2 --quick
python -m repro.experiments figure1 --quick
python -m repro.experiments all --quick
```
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    coreset as coreset_module,
    dynamic_fig,
    multiquery as multiquery_module,
    serve as serve_module,
    tables,
)
from repro.experiments.appendix import appendix_bad_instance, run_appendix_comparison
from repro.experiments.reporting import format_table

#: Parameter overrides used with ``--quick`` to keep every target under a few seconds.
QUICK_OVERRIDES: Dict[str, dict] = {
    "table1": {"n": 25, "trials": 2},
    "table2": {"n": 100, "p_values": (5, 10, 20, 30), "trials": 1},
    "table3": {"n": 25},
    "table4": {"top_k": 25},
    "table5": {"top_k": 80, "p_values": (5, 10, 20, 30)},
    "table6": {"num_queries": 2, "top_k": 25, "p_values": (3, 4, 5)},
    "table7": {"num_queries": 2, "docs_per_query": 80, "p_values": (5, 10, 20)},
    "table8": {"top_k": 25},
    "figure1": {"n": 10, "p": 4, "steps": 5, "repeats": 5},
    "multiquery": {"n": 200, "num_queries": 4, "pool_size": 40, "p": 5},
    "coreset": {"n": 1500, "p": 5, "shard_counts": (2, 8)},
    "serve": {
        "n": 2000,
        "clients": 4,
        "queries_per_client": 3,
        "pool_size": 64,
        "p": 5,
        # Exercise the robustness knobs in the quick run: an admission bound
        # tight enough to shed under 4 concurrent clients, and the durable
        # corpus-snapshot round-trip in front of the server.
        "max_pending": 2,
        "durable_snapshot": True,
    },
}


def _run_table(name: str, quick: bool) -> str:
    function: Callable = getattr(tables, name)
    kwargs = QUICK_OVERRIDES.get(name, {}) if quick else {}
    return function(**kwargs).render()


def _run_figure1(quick: bool) -> str:
    kwargs = QUICK_OVERRIDES["figure1"] if quick else {}
    return dynamic_fig.figure1(**kwargs).render()


def _run_multiquery(quick: bool) -> str:
    kwargs = QUICK_OVERRIDES["multiquery"] if quick else {}
    return multiquery_module.multiquery(**kwargs).render()


def _run_coreset(quick: bool) -> str:
    kwargs = QUICK_OVERRIDES["coreset"] if quick else {}
    return coreset_module.coreset(**kwargs).render()


def _run_serve(quick: bool, trace_path=None) -> str:
    kwargs = dict(QUICK_OVERRIDES["serve"]) if quick else {}
    if trace_path is not None:
        kwargs["trace_path"] = trace_path
    return serve_module.serve(**kwargs).render()


def _run_appendix(quick: bool) -> str:
    r_values = (6, 10, 20) if quick else (6, 10, 20, 40, 80)
    rows = []
    for r in r_values:
        comparison = run_appendix_comparison(appendix_bad_instance(r=r))
        rows.append([r, comparison["greedy_ratio"], comparison["local_search_ratio"]])
    return format_table(
        ["r", "greedy_ratio", "local_search_ratio"],
        rows,
        title="Appendix: partition-matroid bad instance",
    )


TARGETS = tuple(f"table{i}" for i in range(1, 9)) + (
    "figure1",
    "appendix",
    "multiquery",
    "coreset",
    "serve",
    "all",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "target", choices=TARGETS, help="which experiment to regenerate"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use scaled-down parameters (seconds, not minutes)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write Chrome-trace JSON of the run's spans to PATH "
        "(serve target only; open in chrome://tracing or Perfetto)",
    )
    args = parser.parse_args(argv)
    if args.trace is not None and args.target != "serve":
        parser.error("--trace is supported by the serve target only")

    targets = (
        [f"table{i}" for i in range(1, 9)]
        + ["figure1", "appendix", "multiquery", "coreset", "serve"]
        if args.target == "all"
        else [args.target]
    )
    for target in targets:
        if target == "figure1":
            print(_run_figure1(args.quick))
        elif target == "appendix":
            print(_run_appendix(args.quick))
        elif target == "multiquery":
            print(_run_multiquery(args.quick))
        elif target == "coreset":
            print(_run_coreset(args.quick))
        elif target == "serve":
            print(_run_serve(args.quick, trace_path=args.trace))
        else:
            print(_run_table(target, args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
