"""Max-sum p-dispersion greedy (Ravi, Rosenkrantz and Tayi).

Pure dispersion is the special case ``f ≡ 0`` of the diversification problem
(Problem 1).  The vertex greedy repeatedly adds the element with the largest
total distance to the current set; Corollary 1 of the paper shows it is a
2-approximation (re-deriving Birnbaum–Goldman via Theorem 1), and
Birnbaum–Goldman's tight bound is ``(2p - 2)/(p - 1)``.

``batch_size`` implements the Birnbaum–Goldman generalization that greedily
adds ``d`` vertices at a time, giving a ``(2p - 2)/(p + d - 2)``
approximation.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterable, List, Optional, Set

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ZeroFunction
from repro.metrics.base import Metric


def greedy_dispersion(
    metric: Metric,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
    batch_size: int = 1,
) -> SolverResult:
    """Greedy vertex selection maximizing ``d(S)`` subject to ``|S| = p``.

    Parameters
    ----------
    metric:
        The distance structure.
    p:
        Target cardinality.
    candidates:
        Optional candidate pool (defaults to the full universe), routed
        through the restriction layer.
    batch_size:
        Number of vertices added per greedy step (1 = the Ravi et al.
        algorithm; larger values follow Birnbaum–Goldman).
    """
    if batch_size < 1:
        raise InvalidParameterError("batch_size must be at least 1")
    if candidates is not None:
        restriction = Objective(
            ZeroFunction(metric.n), metric, tradeoff=1.0
        ).restrict(candidates)
        result = greedy_dispersion(
            restriction.objective.metric, p, batch_size=batch_size
        )
        return restriction.lift(result)

    started = time.perf_counter()
    objective = Objective(ZeroFunction(metric.n), metric, tradeoff=1.0)
    pool: List[Element] = list(range(metric.n))
    p = min(p, len(pool))
    if p < 0:
        raise InvalidParameterError("p must be non-negative")

    selected: Set[Element] = set()
    order: List[Element] = []
    tracker = objective.make_tracker()
    remaining = set(pool)
    iterations = 0

    while len(selected) < p and remaining:
        take = min(batch_size, p - len(selected))
        if take == 1:
            best_element = None
            best_gain = -float("inf")
            for u in remaining:
                gain = tracker.marginal(u)
                if gain > best_gain or (
                    gain == best_gain and (best_element is None or u < best_element)
                ):
                    best_gain = gain
                    best_element = u
            chosen = (best_element,)
        else:
            # Batch step: pick the group of `take` remaining vertices with the
            # largest combined contribution (marginal to S plus internal).
            best_group = None
            best_gain = -float("inf")
            for group in combinations(sorted(remaining), take):
                gain = sum(tracker.marginal(u) for u in group)
                for i, u in enumerate(group):
                    for v in group[i + 1 :]:
                        gain += metric.distance(u, v)
                if gain > best_gain:
                    best_gain = gain
                    best_group = group
            chosen = best_group or ()
        for element in chosen:
            selected.add(element)
            order.append(element)
            tracker.add(element)
            remaining.discard(element)
        iterations += 1

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm=(
            "greedy_dispersion"
            if batch_size == 1
            else f"greedy_dispersion_batch{batch_size}"
        ),
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata={"p": p, "batch_size": batch_size},
    )
