"""Maximal Marginal Relevance (MMR) baseline.

Carbonell and Goldstein's re-ranking heuristic (Section 2 of the paper):

``MMR = argmax_{u ∉ S} [ θ·rel(u) − (1 − θ)·max_{v ∈ S} sim(u, v) ]``

The paper positions its Greedy B as a theoretically justified relative of
MMR, so the library ships MMR as a baseline.  Relevance comes from the
quality function's singleton marginals and similarity is derived from the
metric by ``sim(u, v) = d_max − d(u, v)`` unless an explicit similarity matrix
is supplied.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set

import numpy as np

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_probability


def mmr_select(
    objective: Objective,
    p: int,
    *,
    theta: float = 0.5,
    candidates: Optional[Iterable[Element]] = None,
    similarity: Optional[np.ndarray] = None,
) -> SolverResult:
    """Select ``p`` elements with the MMR heuristic.

    Parameters
    ----------
    objective:
        Supplies relevance (singleton quality marginals) and, through its
        metric, the default similarity.
    p:
        Number of elements to select.
    theta:
        The MMR trade-off (the paper's λ in the MMR definition; renamed to
        avoid clashing with the diversification trade-off).  1.0 is pure
        relevance, 0.0 is pure novelty.
    candidates:
        Optional candidate pool, routed through the restriction layer
        (:meth:`~repro.core.objective.Objective.restrict`); an explicit
        ``similarity`` matrix is restricted alongside the instance.
    similarity:
        Optional explicit ``n x n`` similarity matrix overriding the
        metric-derived one.
    """
    check_probability("theta", theta)
    if similarity is not None:
        similarity = np.asarray(similarity, dtype=float)
        if similarity.shape != (objective.n, objective.n):
            raise InvalidParameterError(
                "similarity matrix shape must match the universe size"
            )
    if candidates is not None:
        restriction = objective.restrict(candidates)
        sub_similarity = None
        if similarity is not None:
            idx = np.asarray(restriction.candidates, dtype=int)
            sub_similarity = similarity[np.ix_(idx, idx)]
        result = mmr_select(
            restriction.objective, p, theta=theta, similarity=sub_similarity
        )
        return restriction.lift(result)

    started = time.perf_counter()
    pool: List[Element] = list(range(objective.n))
    p = min(p, len(pool))
    if p < 0:
        raise InvalidParameterError("p must be non-negative")

    if similarity is None:
        matrix = objective.metric.to_matrix()
        top = float(matrix.max()) if matrix.size else 0.0
        similarity = top - matrix

    relevance = np.array(
        [objective.quality.marginal(u, frozenset()) for u in range(objective.n)],
        dtype=float,
    )

    selected: Set[Element] = set()
    order: List[Element] = []
    remaining = set(pool)
    iterations = 0

    while len(selected) < p and remaining:
        best_element = None
        best_score = -float("inf")
        for u in remaining:
            redundancy = (
                max(similarity[u, v] for v in selected) if selected else 0.0
            )
            score = theta * relevance[u] - (1.0 - theta) * redundancy
            if score > best_score or (
                score == best_score and (best_element is None or u < best_element)
            ):
                best_score = score
                best_element = u
        assert best_element is not None
        selected.add(best_element)
        order.append(best_element)
        remaining.discard(best_element)
        iterations += 1

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm="mmr",
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata={"theta": theta, "p": p},
    )
