"""Pickle-safe solve checkpoints for interrupted / resumable runs.

A :class:`SolveCheckpoint` is a plain-data snapshot of a solve in progress:

* for **greedy** (``kind="greedy"``) it records the selection order built so
  far — the whole algorithm state, since Greedy B is deterministic given its
  prefix;
* for the **sharded core-set pipeline** (``kind="sharded"``) it records the
  shard layout plus the global-index winners of every shard solved so far,
  so a resumed run skips straight to the unsolved shards.

Checkpoints hold only primitive Python/tuple data (like
:class:`~repro.utils.timing.Stopwatch`, nothing in them depends on live
locks, clocks or array views), so they pickle across process boundaries and
can be written to disk between sessions.  Emission is pull-free: callers pass
``checkpoint_every=`` and an ``on_checkpoint`` callback to
:func:`~repro.core.solver.solve`, and resume by passing the snapshot back as
``resume_from=``.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro._types import Element
from repro.exceptions import InvalidParameterError, SnapshotVersionError

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SolveCheckpoint",
    "check_snapshot_version",
    "load_checkpoint",
    "save_checkpoint",
    "universe_fingerprint",
]

#: Current on-disk format version stamped on every snapshot/checkpoint type
#: (:class:`SolveCheckpoint`, :class:`~repro.dynamic.engine.EngineSnapshot`,
#: :class:`~repro.dynamic.session.SessionSnapshot`,
#: :class:`~repro.serve.corpus.CorpusSnapshot`).  Bump on any incompatible
#: field-semantics change; loaders reject anything newer than they know.
SNAPSHOT_FORMAT_VERSION = 1


def universe_fingerprint(*parts: Any) -> str:
    """A short stable digest identifying the universe a snapshot belongs to.

    Producers stamp it from shape-defining parameters (backend kind, ``p``,
    λ, shard layout, ...); consumers that are handed both a snapshot and a
    live instance compare fingerprints and raise
    :class:`~repro.exceptions.SnapshotVersionError` on mismatch — turning
    "resumed against the wrong universe" from silent corruption into a
    first-class error.
    """
    digest = hashlib.sha1("|".join(repr(part) for part in parts).encode())
    return digest.hexdigest()[:16]


def check_snapshot_version(snapshot: Any, *, source: str = "snapshot") -> Any:
    """Reject snapshots from a newer (or mangled) format; return ``snapshot``.

    Objects without a ``format_version`` attribute predate versioning and
    pass unchanged, which keeps old pickles loadable.
    """
    version = getattr(snapshot, "format_version", None)
    if version is None:
        return snapshot
    if not isinstance(version, int) or version < 1:
        raise SnapshotVersionError(
            f"{source} carries an invalid format_version {version!r}"
        )
    if version > SNAPSHOT_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"{source} has format_version {version}; this build reads versions "
            f"up to {SNAPSHOT_FORMAT_VERSION} — upgrade the library to load it"
        )
    return snapshot


def save_checkpoint(checkpoint: Any, path: str) -> None:
    """Pickle any checkpoint/snapshot object to ``path``.

    Shared by every persistence point in the stack — solve checkpoints,
    dynamic engine/session snapshots and the serving tier's corpus snapshots
    all hold plain-data state, so one pickle helper covers them.
    """
    with open(path, "wb") as handle:
        pickle.dump(checkpoint, handle)


def load_checkpoint(path: str, expected_type: type) -> Any:
    """Load a checkpoint written by :func:`save_checkpoint`, type-checked.

    Raises :class:`~repro.exceptions.InvalidParameterError` when the pickle
    holds anything but an ``expected_type`` instance, so a solve checkpoint
    cannot be silently fed where a corpus snapshot was expected (and vice
    versa).
    """
    with open(path, "rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, expected_type):
        raise InvalidParameterError(
            f"{path!r} does not contain a {expected_type.__name__}"
        )
    return check_snapshot_version(checkpoint, source=repr(path))


@dataclass(frozen=True)
class SolveCheckpoint:
    """A resumable snapshot of one solve.

    Attributes
    ----------
    kind:
        ``"greedy"`` or ``"sharded"`` — which solve path emitted it (and
        which path can resume it).
    n:
        Universe size of the instance the checkpoint belongs to.  Resuming
        against a different universe raises.
    p:
        The cardinality target of the interrupted solve.
    order:
        Greedy checkpoints: the selection order built so far.
    shard_winners:
        Sharded checkpoints: ``{shard index: global winners}`` for every
        shard already solved (or small enough to skip solving).
    shard_sizes:
        Sharded checkpoints: the shard layout, used to verify that a resume
        runs against the same partition.
    elapsed_seconds:
        Wall-clock seconds spent before the checkpoint was cut.
    metadata:
        Free-form extras (phase, algorithm name, ...).
    format_version:
        On-disk format version (see :data:`SNAPSHOT_FORMAT_VERSION`).
    fingerprint:
        Optional :func:`universe_fingerprint` of the emitting instance;
        ``None`` on checkpoints from producers that do not stamp one.
    """

    kind: str
    n: int
    p: int
    order: Tuple[Element, ...] = ()
    shard_winners: Mapping[int, Tuple[Element, ...]] = field(default_factory=dict)
    shard_sizes: Tuple[int, ...] = ()
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    format_version: int = SNAPSHOT_FORMAT_VERSION
    fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def require(
        self, kind: str, n: int, *, fingerprint: Optional[str] = None
    ) -> "SolveCheckpoint":
        """Assert the checkpoint matches the resuming solve; return ``self``.

        Raises :class:`~repro.exceptions.InvalidParameterError` on a kind or
        universe mismatch (and
        :class:`~repro.exceptions.SnapshotVersionError` on a version or
        fingerprint mismatch) so a checkpoint cannot silently resume against
        the wrong instance.
        """
        check_snapshot_version(self, source="checkpoint")
        if self.kind != kind:
            raise InvalidParameterError(
                f"checkpoint kind {self.kind!r} cannot resume a {kind!r} solve"
            )
        if self.n != n:
            raise InvalidParameterError(
                f"checkpoint covers a universe of {self.n} elements but the "
                f"instance has {n}"
            )
        if (
            fingerprint is not None
            and self.fingerprint is not None
            and fingerprint != self.fingerprint
        ):
            raise SnapshotVersionError(
                f"checkpoint fingerprint {self.fingerprint} does not match the "
                f"resuming instance ({fingerprint}); it belongs to a different "
                f"universe"
            )
        return self

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Pickle the checkpoint to ``path``."""
        save_checkpoint(self, path)

    @staticmethod
    def load(path: str) -> "SolveCheckpoint":
        """Load a checkpoint previously written by :meth:`save`."""
        return load_checkpoint(path, SolveCheckpoint)
