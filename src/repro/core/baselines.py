"""Baseline algorithms the paper's experiments compare against.

* **Greedy A** (:func:`gollapudi_sharma_greedy`) — the Gollapudi–Sharma
  approach: reduce the modular-quality diversification problem to max-sum
  dispersion under the modified metric ``d'(u, v) = w(u) + w(v) + 2λ·d(u, v)``
  and run the Hassin–Rubinstein–Tamir *edge* greedy on ``d'``.  The paper
  calls this "Greedy A"; its 2-approximation only holds for modular quality.
* **Improved Greedy A** — the Table 3 variant that, when ``p`` is odd, picks
  the *best* final vertex (w.r.t. the true objective) instead of an arbitrary
  one.
* **Matching-based algorithm** (:func:`matching_diversify`) — Hassin et al.'s
  (2 − 1/⌈p/2⌉)-approximation: take a maximum-weight matching of ⌊p/2⌋ edges
  under ``d'`` instead of greedily chosen edges.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError, SolverError
from repro.functions.modular import ModularFunction, ZeroFunction
from repro.metrics.matrix import DistanceMatrix


def _require_modular_weights(objective: Objective) -> np.ndarray:
    """Extract the weight vector; Greedy A only applies to modular quality."""
    quality = objective.quality
    if isinstance(quality, ModularFunction):
        return quality.weights
    if isinstance(quality, ZeroFunction):
        return np.zeros(objective.n)
    if quality.is_modular:
        return np.array(
            [quality.marginal(u, frozenset()) for u in range(objective.n)], dtype=float
        )
    raise SolverError(
        "Greedy A (the Gollapudi–Sharma reduction) requires a modular quality "
        f"function; got {type(quality).__name__}. Use greedy_diversify or "
        "local_search_diversify for submodular quality."
    )


def reduced_metric(objective: Objective) -> DistanceMatrix:
    """The Gollapudi–Sharma reduction metric ``d'(u,v) = w(u) + w(v) + 2λ·d(u,v)``.

    ``d'`` is a metric whenever ``d`` is: the star distance ``w(u) + w(v)``
    satisfies the triangle inequality on its own, and metrics are closed under
    non-negative combination.
    """
    weights = _require_modular_weights(objective)
    base = objective.metric.to_matrix()
    reduced = weights[:, None] + weights[None, :] + 2.0 * objective.tradeoff * base
    np.fill_diagonal(reduced, 0.0)
    return DistanceMatrix(reduced, copy=False)


def _edge_greedy_pairs(
    reduced: DistanceMatrix, pool: List[Element], num_pairs: int
) -> List[Tuple[Element, Element]]:
    """Greedily pick ``num_pairs`` disjoint pairs maximizing the reduced distance.

    Works on a masked copy of the reduced distance matrix restricted to the
    candidate pool, so every greedy step is a single vectorized ``argmax``
    over the remaining edges (the HRT algorithm greedily chooses edges and
    removes both endpoints).
    """
    if num_pairs <= 0 or len(pool) < 2:
        return []
    indices = np.array(sorted(pool), dtype=int)
    scores = reduced.array[np.ix_(indices, indices)].copy()
    # Only consider each unordered pair once and never a self-pair.
    scores[np.tril_indices(len(indices))] = -np.inf
    chosen: List[Tuple[Element, Element]] = []
    for _ in range(num_pairs):
        flat = int(np.argmax(scores))
        i, j = divmod(flat, scores.shape[1])
        if not np.isfinite(scores[i, j]):
            break
        chosen.append((int(indices[i]), int(indices[j])))
        scores[i, :] = -np.inf
        scores[:, i] = -np.inf
        scores[j, :] = -np.inf
        scores[:, j] = -np.inf
    return chosen


def gollapudi_sharma_greedy(
    objective: Objective,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
    improved: bool = False,
) -> SolverResult:
    """Greedy A: reduction to dispersion + the HRT edge greedy.

    Parameters
    ----------
    objective:
        Must have a modular quality function (the reduction needs weights).
    p:
        Target cardinality.
    candidates:
        Optional candidate pool, routed through the restriction layer
        (:meth:`~repro.core.objective.Objective.restrict`).
    improved:
        When ``True`` and ``p`` is odd, the final singleton vertex is chosen
        to maximize the true objective rather than arbitrarily (the
        "improved Greedy A" of Table 3).
    """
    if candidates is not None:
        restriction = objective.restrict(candidates)
        result = gollapudi_sharma_greedy(restriction.objective, p, improved=improved)
        return restriction.lift(result)

    started = time.perf_counter()
    pool: List[Element] = list(range(objective.n))
    p = min(p, len(pool))
    if p < 0:
        raise InvalidParameterError("p must be non-negative")

    reduced = reduced_metric(objective)
    num_pairs = p // 2
    pairs = _edge_greedy_pairs(reduced, pool, num_pairs)

    selected: Set[Element] = set()
    order: List[Element] = []
    for u, v in pairs:
        for element in (u, v):
            selected.add(element)
            order.append(element)

    iterations = len(pairs)
    if len(selected) < p:
        remaining = [u for u in pool if u not in selected]
        if remaining:
            if improved:
                tracker = objective.make_tracker(selected)
                extra = max(
                    remaining,
                    key=lambda u: objective.marginal(u, selected, tracker=tracker),
                )
            else:
                # The paper notes Greedy A "chooses an arbitrary last vertex";
                # we take the lowest-index remaining candidate for determinism.
                extra = min(remaining)
            selected.add(extra)
            order.append(extra)
            iterations += 1

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm="greedy_a_improved" if improved else "greedy_a",
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata={"p": p, "improved": improved, "pairs": pairs},
    )


def matching_diversify(
    objective: Objective,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
) -> SolverResult:
    """Hassin–Rubinstein–Tamir matching algorithm through the GS reduction.

    Computes a maximum-weight matching with exactly ⌊p/2⌋ edges under the
    reduced metric ``d'`` and returns the matched vertices (plus a best final
    vertex when ``p`` is odd).  Achieves a (2 − 1/⌈p/2⌉)-approximation for
    modular quality.

    Uses :mod:`networkx` for the maximum-weight matching.  A ``candidates``
    pool is routed through the restriction layer.
    """
    import networkx as nx

    if candidates is not None:
        restriction = objective.restrict(candidates)
        return restriction.lift(matching_diversify(restriction.objective, p))

    started = time.perf_counter()
    pool: List[Element] = list(range(objective.n))
    p = min(p, len(pool))
    if p < 0:
        raise InvalidParameterError("p must be non-negative")

    reduced = reduced_metric(objective)
    num_pairs = p // 2

    selected: Set[Element] = set()
    order: List[Element] = []
    iterations = 0

    if num_pairs > 0 and len(pool) >= 2:
        graph = nx.Graph()
        graph.add_nodes_from(pool)
        # Offset edge weights so maximum-weight matching prefers *more* edges
        # first, then heavier ones, which yields a maximum-weight matching of
        # maximum cardinality; we then keep the heaviest `num_pairs` edges.
        offset = (
            max(
                reduced.distance(u, v)
                for i, u in enumerate(pool)
                for v in pool[i + 1 :]
            )
            + 1.0
        )
        for i, u in enumerate(pool):
            for v in pool[i + 1 :]:
                graph.add_edge(u, v, weight=reduced.distance(u, v) + offset)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        scored = sorted(
            ((reduced.distance(u, v), tuple(sorted((u, v)))) for u, v in matching),
            reverse=True,
        )
        for _, (u, v) in scored[:num_pairs]:
            selected.update((u, v))
            order.extend((u, v))
            iterations += 1

    if len(selected) < p:
        remaining = [u for u in pool if u not in selected]
        if remaining:
            tracker = objective.make_tracker(selected)
            extra = max(
                remaining,
                key=lambda u: objective.marginal(u, selected, tracker=tracker),
            )
            selected.add(extra)
            order.append(extra)
            iterations += 1

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm="matching",
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata={"p": p},
    )
