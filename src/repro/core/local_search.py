"""Oblivious single-swap local search (Section 5).

For an arbitrary matroid constraint the paper's local search:

1. initializes with a basis containing the feasible pair ``{x, y}`` maximizing
   ``f({x, y}) + λ·d(x, y)``,
2. while some swap ``S - v + u`` (``u ∉ S``, ``v ∈ S``, result independent)
   improves the objective, performs the best such swap.

Theorem 2 shows the locally optimal solution is a 2-approximation for
monotone submodular quality.  As the paper notes, requiring at least an
ε-relative improvement per swap bounds the number of iterations polynomially
at a ``2(1 + ε)`` style loss; :class:`LocalSearchConfig.epsilon` exposes that
knob.

:func:`refine_with_local_search` is the experiments' "LS": start from an
existing solution (Greedy B's output) under a uniform matroid and run
best-improvement swaps under a wall-clock budget expressed as a multiple of
the seed solution's running time (the paper uses 10×).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro._types import Element
from repro.core import kernels
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InfeasibleError, InvalidParameterError
from repro.matroids.base import Matroid, restriction_feasible_pairs
from repro.matroids.uniform import UniformMatroid
from repro.utils.deadline import Deadline, mark_interrupted


@dataclass(frozen=True)
class LocalSearchConfig:
    """Termination and improvement policy for the local search.

    Attributes
    ----------
    epsilon:
        Minimum relative improvement per swap: a swap is accepted only if it
        improves the objective by more than ``epsilon * |φ(S)| / n``.  0 means
        any strict improvement counts (the algorithm exactly as stated in the
        paper).
    max_swaps:
        Hard cap on the number of accepted swaps (``None`` = unbounded).
    time_budget_seconds:
        Wall-clock budget (``None`` = unbounded).
    first_improvement:
        Accept the first improving swap found instead of the best one.
    """

    epsilon: float = 0.0
    max_swaps: Optional[int] = None
    time_budget_seconds: Optional[float] = None
    first_improvement: bool = False

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise InvalidParameterError("epsilon must be non-negative")
        if self.max_swaps is not None and self.max_swaps < 0:
            raise InvalidParameterError("max_swaps must be non-negative")
        if self.time_budget_seconds is not None and self.time_budget_seconds < 0:
            raise InvalidParameterError("time_budget_seconds must be non-negative")


def _initial_basis(objective: Objective, matroid: Matroid) -> Set[Element]:
    """The paper's initialization: best feasible pair extended to a basis."""
    rank = matroid.rank()
    if rank == 0:
        return set()
    if rank == 1:
        best = max(
            (u for u in range(matroid.n) if matroid.is_independent({u})),
            key=lambda u: objective.value({u}),
            default=None,
        )
        if best is None:
            raise InfeasibleError("matroid has rank 1 but no independent singleton")
        return {best}
    best_pair: Optional[Tuple[Element, Element]] = None
    fast = kernels.matrix_fast_path(objective)
    pair_mask = matroid.pair_feasibility_mask() if fast is not None else None
    if fast is not None and pair_mask is not None:
        # One masked matrix argmax over w[x] + w[y] + λ·D[x, y] instead of
        # O(n²) pair_value calls.
        weights, matrix = fast
        move = kernels.pair_argmax(
            weights, matrix, objective.tradeoff, range(matroid.n), mask=pair_mask
        )
        if move is not None:
            best_pair = (move[0], move[1])
    else:
        best_value = -float("inf")
        for x, y in restriction_feasible_pairs(matroid):
            value = objective.pair_value(x, y)
            if value > best_value:
                best_value = value
                best_pair = (x, y)
    if best_pair is None:
        raise InfeasibleError("no independent pair exists in the matroid")
    # Extend preferring high singleton quality so the starting basis is sensible.
    preference = sorted(
        range(matroid.n),
        key=lambda u: objective.quality.marginal(u, frozenset()),
        reverse=True,
    )
    return set(matroid.extend_to_basis(set(best_pair), preference=preference))


def _scan_swaps_reference(
    objective: Objective,
    matroid: Matroid,
    selected: Set[Element],
    tracker,
    threshold: float,
    *,
    weights: Optional[np.ndarray] = None,
    first_improvement: bool = False,
    out_of_time=None,
) -> Optional[Tuple[Element, Element, float]]:
    """One loop-based best-swap scan (the oracle fallback path).

    The distance part of each swap gain is read from a
    :class:`~repro.metrics.aggregates.MarginalDistanceTracker` in O(1):

    ``φ(S − v + u) − φ(S) = [f(S − v + u) − f(S)] + λ·[(d_u(S) − d(u, v)) − d_v(S)]``

    For modular quality the bracketed quality term is ``w(u) − w(v)``, making
    every candidate swap O(1); for general submodular quality it is one
    single-candidate batched-gains call against a per-outgoing removal state
    cached for the scan (see the marginal-gain protocol in
    :mod:`repro.functions.base`).  Returns ``(incoming, outgoing, gain)``
    with ``gain > threshold``, or ``None``.  ``weights`` may be passed by
    callers that already hold the modular weight vector (it is recomputed
    otherwise).
    """
    quality = objective.quality
    metric = objective.metric
    lam = objective.tradeoff
    if weights is None:
        weights = kernels.modular_weights(quality)
    # For non-modular quality, the f(S − v + u) − f(S) term of every swap
    # against the same outgoing v is served by one gain state for S − v
    # (built lazily on first use, cached for the whole scan):
    # f(S − v + u) − f(S) = f_u(S − v) − f_v(S − v), one single-candidate
    # gains call per swap instead of two full value-oracle evaluations.
    removal_states: dict = {}

    def removal_state(outgoing: Element):
        cached = removal_states.get(outgoing)
        if cached is None:
            cached = kernels.removal_gain_state(quality, selected, outgoing)
            removal_states[outgoing] = cached
        return cached

    best_move: Optional[Tuple[Element, Element]] = None
    best_gain = threshold
    stop_scan = False
    for incoming in range(objective.n):
        if incoming in selected:
            continue
        if out_of_time is not None and incoming % 64 == 0 and out_of_time():
            break
        distance_in = tracker.marginal(incoming)
        for outgoing in matroid.swap_candidates(selected, incoming):
            distance_gain = (
                distance_in - metric.distance(incoming, outgoing)
            ) - tracker.marginal(outgoing)
            if weights is not None:
                quality_gain = float(weights[incoming] - weights[outgoing])
            else:
                state, base = removal_state(outgoing)
                quality_gain = float(quality.gains((incoming,), state)[0]) - base
            gain = quality_gain + lam * distance_gain
            if gain > best_gain:
                best_gain = gain
                best_move = (incoming, outgoing)
                if first_improvement:
                    stop_scan = True
                    break
        if stop_scan:
            break
    if best_move is None:
        return None
    return best_move[0], best_move[1], best_gain


def _scan_swaps_vectorized(
    objective: Objective,
    matroid: Matroid,
    selected: Set[Element],
    tracker,
    threshold: float,
    weights: np.ndarray,
    matrix: np.ndarray,
    *,
    first_improvement: bool = False,
) -> Optional[Tuple[Element, Element, float]]:
    """One kernel-based best-swap scan: a masked argmax over the gain matrix.

    Builds the full (incoming × outgoing) gain matrix
    ``(w[in] − w[out]) + λ·((d_in(S) − D[in, out]) − d_out(S))`` in one shot
    from the tracker's marginal view, masked by the matroid's vectorized
    feasibility rule.
    """
    inside, outside = kernels.solution_split(objective.n, selected)
    feasible = matroid.swap_feasibility(selected, outside, inside)
    return kernels.best_swap_scan(
        weights,
        matrix,
        objective.tradeoff,
        tracker.marginals_view(),
        outside,
        inside,
        feasible=feasible,
        threshold=threshold,
        first_improvement=first_improvement,
    )


def _swap_quality_gains(
    quality, selected: Set[Element], inside: np.ndarray, outside: np.ndarray
) -> np.ndarray:
    """Quality-gain matrix ``Q[i, j] = f(S − inside[j] + outside[i]) − f(S)``.

    One removal state per outgoing element, each answering the gains of
    *every* incoming candidate in a single batch:
    ``Q[:, j] = f_·(S − v_j) − f_{v_j}(S − v_j)``.
    """
    gains = np.empty((outside.size, inside.size), dtype=float)
    for j, outgoing in enumerate(inside):
        state, base = kernels.removal_gain_state(quality, selected, int(outgoing))
        gains[:, j] = quality.gains(outside, state) - base
    return gains


def _scan_swaps_submodular(
    objective: Objective,
    matroid: Matroid,
    selected: Set[Element],
    tracker,
    threshold: float,
    matrix: np.ndarray,
    *,
    first_improvement: bool = False,
) -> Optional[Tuple[Element, Element, float]]:
    """One kernel-based best-swap scan for *non-modular* quality.

    The distance part is the same masked gain-matrix argmax as the modular
    kernel scan; the quality part comes from the batched marginal-gain
    protocol (:func:`_swap_quality_gains`) instead of a weight vector —
    O(p) states and O(p) gains batches per scan instead of O(n·p)
    value-oracle evaluations.
    """
    inside, outside = kernels.solution_split(objective.n, selected)
    if inside.size == 0 or outside.size == 0:
        return None
    feasible = matroid.swap_feasibility(selected, outside, inside)
    quality_gain = _swap_quality_gains(objective.quality, selected, inside, outside)
    gains = kernels.swap_gain_matrix_general(
        quality_gain,
        matrix,
        objective.tradeoff,
        tracker.marginals_view(),
        outside,
        inside,
    )
    return kernels.best_swap_scan_from_gains(
        gains,
        outside,
        inside,
        feasible=feasible,
        threshold=threshold,
        first_improvement=first_improvement,
    )


def _run_swaps(
    objective: Objective,
    matroid: Matroid,
    selected: Set[Element],
    config: LocalSearchConfig,
    started: float,
    swap_trace: List[Tuple[Element, Element, float]],
    deadline: Optional[Deadline] = None,
) -> Tuple[int, bool]:
    """Perform improving swaps in place; return the number of swaps accepted.

    Each iteration runs one best-swap scan: the modular kernel scan when the
    metric is matrix-backed, the quality modular and the matroid family has a
    closed-form feasibility rule; the submodular kernel scan (quality gains
    batched through the marginal-gain protocol) when the metric is
    matrix-backed and the quality is *not* modular; and the loop-based
    reference scan otherwise.  All scans accept only swaps strictly better
    than the ε-threshold of :class:`LocalSearchConfig`.

    Returns ``(swaps accepted, interrupted)`` — ``interrupted`` is ``True``
    only when a cooperative ``deadline`` expired; the config's own time
    budget counts as ordinary (non-interrupted) termination, matching the
    existing ``converged`` metadata contract.
    """
    swaps = 0
    interrupted = False
    tracker = objective.make_tracker(selected)
    current_value = objective.value(selected)

    fast = kernels.matrix_fast_path(objective)
    use_kernel = fast is not None and kernels.swap_kernel_supported(objective, matroid)
    matrix_view = objective.metric.matrix_view()
    use_submodular_kernel = (
        not use_kernel
        and matrix_view is not None
        and not objective.quality.is_modular
        and kernels.matroid_swap_vectorized(matroid)
    )
    reference_weights = (
        None if use_kernel else kernels.modular_weights(objective.quality)
    )

    def out_of_time() -> bool:
        if deadline is not None and deadline.expired():
            return True
        return (
            config.time_budget_seconds is not None
            and time.perf_counter() - started > config.time_budget_seconds
        )

    while True:
        if config.max_swaps is not None and swaps >= config.max_swaps:
            break
        if deadline is not None and deadline.expired():
            interrupted = True
            break
        if out_of_time():
            break
        threshold = config.epsilon * abs(current_value) / max(objective.n, 1)
        if use_kernel:
            weights, matrix = fast
            move = _scan_swaps_vectorized(
                objective,
                matroid,
                selected,
                tracker,
                threshold,
                weights,
                matrix,
                first_improvement=config.first_improvement,
            )
        elif use_submodular_kernel:
            move = _scan_swaps_submodular(
                objective,
                matroid,
                selected,
                tracker,
                threshold,
                matrix_view,
                first_improvement=config.first_improvement,
            )
        else:
            move = _scan_swaps_reference(
                objective,
                matroid,
                selected,
                tracker,
                threshold,
                weights=reference_weights,
                first_improvement=config.first_improvement,
                out_of_time=out_of_time,
            )
        if move is None:
            break
        incoming, outgoing, best_gain = move
        selected.remove(outgoing)
        selected.add(incoming)
        tracker.swap(incoming, outgoing)
        current_value += best_gain
        swap_trace.append((incoming, outgoing, best_gain))
        swaps += 1
    return swaps, interrupted


def local_search_diversify(
    objective: Objective,
    matroid: Matroid,
    *,
    config: Optional[LocalSearchConfig] = None,
    initial: Optional[Iterable[Element]] = None,
    candidates: Optional[Iterable[Element]] = None,
    deadline: Union[None, float, Deadline] = None,
) -> SolverResult:
    """Run the single-swap local search under a matroid constraint.

    Parameters
    ----------
    objective:
        The combined objective ``φ``.
    matroid:
        The independence constraint.  The returned set is a basis.
    config:
        Termination policy (defaults to pure best-improvement until a local
        optimum, as in Theorem 2).
    initial:
        Optional independent set to start from instead of the paper's
        best-pair initialization.  It is extended to a basis first.
    candidates:
        Optional candidate pool, routed through the restriction layer: both
        the objective and the matroid are restricted
        (:meth:`~repro.matroids.base.Matroid.restrict`), the search runs on
        the sub-instance, and the result is lifted back.  ``initial`` (when
        given) must lie inside the pool.
    deadline:
        Optional cooperative wall-clock budget (seconds or a
        :class:`~repro.utils.deadline.Deadline`).  Checked before every swap
        scan (and periodically inside the reference scan); on expiry the
        current basis — always feasible, since swaps preserve independence —
        is returned with ``metadata["interrupted"] = True``.
    """
    config = config or LocalSearchConfig()
    if matroid.n != objective.n:
        raise InvalidParameterError(
            f"matroid covers {matroid.n} elements but the objective covers "
            f"{objective.n}"
        )
    if candidates is not None:
        restriction = objective.restrict(candidates)
        sub_initial = restriction.to_local(initial) if initial is not None else None
        result = local_search_diversify(
            restriction.objective,
            matroid.restrict(restriction.candidates),
            config=config,
            initial=sub_initial,
            deadline=deadline,
        )
        return restriction.lift(result)

    started = time.perf_counter()
    deadline = Deadline.coerce(deadline)
    if initial is None:
        selected = _initial_basis(objective, matroid)
    else:
        initial_set = set(initial)
        if not matroid.is_independent(initial_set):
            raise InvalidParameterError(
                "initial set must be independent in the matroid"
            )
        preference = sorted(
            range(matroid.n),
            key=lambda u: objective.quality.marginal(u, frozenset()),
            reverse=True,
        )
        selected = set(matroid.extend_to_basis(initial_set, preference=preference))

    swap_trace: List[Tuple[Element, Element, float]] = []
    swaps, interrupted = _run_swaps(
        objective, matroid, selected, config, started, swap_trace, deadline
    )
    elapsed = time.perf_counter() - started
    metadata = {
        "swaps": swap_trace,
        "epsilon": config.epsilon,
        "converged": (
            not interrupted
            and (config.max_swaps is None or swaps < config.max_swaps)
            and (
                config.time_budget_seconds is None
                or elapsed <= config.time_budget_seconds
            )
        ),
    }
    if interrupted:
        mark_interrupted(metadata, deadline, "local_search_swaps")
    return build_result(
        objective,
        selected,
        sorted(selected),
        algorithm="local_search",
        iterations=swaps,
        elapsed_seconds=elapsed,
        metadata=metadata,
    )


def refine_with_local_search(
    objective: Objective,
    seed_result: SolverResult,
    *,
    p: Optional[int] = None,
    time_budget_multiple: float = 10.0,
    min_budget_seconds: float = 0.01,
    config: Optional[LocalSearchConfig] = None,
    deadline: Union[None, float, Deadline] = None,
) -> SolverResult:
    """The experiments' "LS": swap-refine a greedy solution under a time budget.

    Parameters
    ----------
    objective:
        The objective the seed was computed for.
    seed_result:
        Typically the output of :func:`repro.core.greedy.greedy_diversify`.
    p:
        Cardinality of the uniform-matroid constraint (defaults to the seed's
        size).
    time_budget_multiple:
        Wall-clock budget as a multiple of the seed's running time (the paper
        runs LS for at most 10× the Greedy B time).
    min_budget_seconds:
        Lower bound on the budget so very fast greedy runs still allow a few
        swaps.
    config:
        Optional base configuration; its time budget is overridden.
    deadline:
        Optional cooperative wall-clock budget, checked alongside the
        seed-relative time budget; on expiry the refinement stops and the
        partially refined (still feasible) solution is returned with
        ``metadata["interrupted"] = True``.
    """
    if time_budget_multiple < 0:
        raise InvalidParameterError("time_budget_multiple must be non-negative")
    cardinality = p if p is not None else seed_result.size
    matroid = UniformMatroid(objective.n, cardinality)
    budget = max(seed_result.elapsed_seconds * time_budget_multiple, min_budget_seconds)
    base = config or LocalSearchConfig()
    refined_config = LocalSearchConfig(
        epsilon=base.epsilon,
        max_swaps=base.max_swaps,
        time_budget_seconds=budget,
        first_improvement=base.first_improvement,
    )
    started = time.perf_counter()
    deadline = Deadline.coerce(deadline)
    selected = set(seed_result.selected)
    swap_trace: List[Tuple[Element, Element, float]] = []
    swaps, interrupted = _run_swaps(
        objective, matroid, selected, refined_config, started, swap_trace, deadline
    )
    elapsed = time.perf_counter() - started
    metadata = {
        "seed_algorithm": seed_result.algorithm,
        "seed_value": seed_result.objective_value,
        "budget_seconds": budget,
        "swaps": swap_trace,
    }
    if interrupted:
        mark_interrupted(metadata, deadline, "local_search_refine")
    return build_result(
        objective,
        selected,
        sorted(selected),
        algorithm="local_search_refine",
        iterations=swaps,
        elapsed_seconds=elapsed,
        metadata=metadata,
    )
