"""Sharded core-set solving for huge universes.

Every solve path below :func:`~repro.core.solver.solve` is O(n²)-in-memory
once the metric is materialized, which caps the universe at tens of
thousands of elements.  This module lifts that cap with the classic
*composable core-set* scheme for max-sum diversification:

1. **Partition** the universe (or candidate pool) into contiguous shards.
2. **Solve each shard** as an independent sub-instance built by the
   restriction layer (:class:`~repro.core.restriction.Restriction`), using
   the lazy metric tier (:meth:`~repro.metrics.base.Metric.restrict_lazy` /
   :meth:`~repro.metrics.base.Metric.block`) so no step ever touches the
   global ``n × n`` matrix.  Shards are independent, so the map optionally
   runs on a thread or process pool.
3. **Union** the per-shard winners into a small core-set and run the final
   algorithm on that union, lifting indices back into the original universe.

With ``per_shard_p = p`` winners per shard the union is the standard
composable core-set for sum-dispersion objectives: each shard keeps every
element the global optimum could need from it up to the approximation factor
of the shard algorithm, so the two-stage objective stays within a constant
factor of the single-stage one (the benchmarks guard a ≥0.95 parity ratio
against global greedy empirically).

Memory model: the peak footprint is O(shard_size² + core²) — the one shard
block being solved (when the shard algorithm needs a materialized block at
all; plain greedy runs on O(shard_size · d) lazy state) plus the final
core-set block — instead of O(n²).
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.core.local_search import LocalSearchConfig
from repro.core.objective import Objective
from repro.core.restriction import Restriction
from repro.core.result import SolverResult
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction
from repro.metrics.base import Metric
from repro.metrics.matrix import DistanceMatrix
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_candidate_pool

__all__ = ["shard_pool", "solve_sharded"]

#: Shard-stage algorithms that run efficiently on a *lazy* sub-metric (their
#: hot loops only need rows, which feature metrics answer in O(k·d)).  Every
#: other algorithm wants the shard's distance block materialized so the
#: vectorized kernels apply.  Submodular quality keeps shard solves fast on
#: either tier: the restriction layer's quality views compose their parent's
#: batched marginal-gain states, so each per-shard greedy runs the CELF fast
#: path instead of a per-candidate oracle loop.
_LAZY_FRIENDLY_ALGORITHMS = frozenset({"auto", "greedy", "mmr"})

_EXECUTORS = ("thread", "process")


def shard_pool(
    pool: np.ndarray,
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[np.ndarray]:
    """Split a sorted candidate pool into contiguous, non-empty shards.

    Exactly one of ``shards`` / ``shard_size`` may drive the split (when both
    are given, ``shards`` wins).  The shard count is clamped to the pool size
    and empty shards (requested count exceeding the pool) are dropped, so the
    result is always a partition of ``pool`` into non-empty pieces.
    """
    if shards is None and shard_size is None:
        raise InvalidParameterError("supply shards or shard_size")
    if shards is None:
        if shard_size < 1:
            raise InvalidParameterError("shard_size must be at least 1")
        shards = -(-pool.size // shard_size) if pool.size else 1
    if shards < 1:
        raise InvalidParameterError("shards must be at least 1")
    count = min(shards, max(pool.size, 1))
    return [part for part in np.array_split(pool, count) if part.size]


def _block_matrix(metric: Metric, pool: np.ndarray) -> DistanceMatrix:
    """Materialize ``pool × pool`` distances into a :class:`DistanceMatrix`.

    The block is symmetrized first: GEMM-based blocks (cosine) can disagree
    between ``B[i, j]`` and ``B[j, i]`` by a few ulps of reassociation noise,
    which the :class:`DistanceMatrix` axiom check would reject at high
    dimension.  Exactly-symmetric blocks (euclidean, matrix slices) pass
    through bitwise unchanged since ``(x + x) / 2 == x``.
    """
    block = metric.block(pool, pool)
    return DistanceMatrix((block + block.T) / 2.0, copy=False)


def _sub_metric(metric: Metric, pool: np.ndarray, materialize: bool) -> Metric:
    """The restriction of ``metric`` onto ``pool`` for one shard solve.

    ``materialize=True`` produces a :class:`DistanceMatrix` (a copy-free view
    for matrix-backed parents, a chunk-computed block otherwise) so the
    vectorized kernels apply; ``materialize=False`` prefers the lazy tier and
    only falls back to the default O(k²) restriction for pure oracle metrics.
    """
    if materialize:
        if metric.matrix_view() is not None:
            return metric.restrict(pool)
        return _block_matrix(metric, pool)
    lazy = metric.restrict_lazy(pool)
    return lazy if lazy is not None else metric.restrict(pool)


def _materialize_objective(objective: Objective) -> Objective:
    """Swap a lazy metric for its block-materialized :class:`DistanceMatrix`."""
    if objective.metric.matrix_view() is not None:
        return objective
    matrix = _block_matrix(objective.metric, np.arange(objective.n))
    return Objective(objective.quality, matrix, objective.tradeoff)


def _solve_shard(
    payload: Tuple[Objective, str, int, Optional[LocalSearchConfig], bool],
) -> Tuple[List[Element], float]:
    """Solve one shard sub-instance; returns (local winners, elapsed seconds).

    Top-level so process pools can pickle it.  Materialization happens *here*
    rather than in the parent, so with a pool the block computations run in
    the workers (threads: NumPy releases the GIL; processes: each worker owns
    its block) and the parent never holds more than one shard's payload.
    """
    objective, algorithm, p, config, materialize = payload
    from repro.core.solver import _dispatch

    started = time.perf_counter()
    if materialize:
        objective = _materialize_objective(objective)
    result = _dispatch(
        objective, algorithm, p=p, matroid=None, local_search_config=config
    )
    return sorted(result.selected), time.perf_counter() - started


def solve_sharded(
    quality: SetFunction,
    metric: Metric,
    *,
    tradeoff: float,
    p: int,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    algorithm: str = "auto",
    shard_algorithm: Optional[str] = None,
    per_shard_p: Optional[int] = None,
    candidates: Optional[Iterable[Element]] = None,
    materialize_shards: Optional[bool] = None,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    local_search_config: Optional[LocalSearchConfig] = None,
) -> SolverResult:
    """Solve a huge cardinality-constrained instance via a sharded core-set.

    Parameters
    ----------
    quality, metric, tradeoff:
        The instance ``(f, d, λ)``.  The metric is never asked for its full
        matrix: shard solves see at most a ``shard_size²`` block.
    p:
        Cardinality constraint.  Matroid constraints are not supported — the
        core-set union argument is cardinality-specific.
    shards, shard_size:
        Partition control: an explicit shard count, or a target elements-per-
        shard (the count is derived).  One of the two is required.  A single
        shard degenerates to — and returns exactly the result of — the plain
        unsharded solve.
    algorithm:
        Final-stage algorithm run on the core-set union, as in
        :func:`~repro.core.solver.solve` (the core-set is small, so expensive
        algorithms are affordable here).
    shard_algorithm:
        Per-shard algorithm (default ``"greedy"`` — Greedy B's 2-approximation
        is what the composability argument wants, and it runs on lazy O(k·d)
        state).
    per_shard_p:
        Winners kept per shard (default ``p``).  Raising it grows the
        core-set and tightens parity at the cost of final-stage work.
    candidates:
        Optional candidate pool; sharding then partitions the pool instead of
        the full universe.
    materialize_shards:
        Force (``True``) or forbid (``False``) materializing each shard's
        distance block.  Default ``None`` picks per algorithm: lazy for
        greedy-style shard algorithms, materialized for kernels that need the
        block (local search, pair seeding, Greedy A).
    max_workers, executor:
        Optional pool for the shard map: ``executor="thread"`` (honored only
        when the metric reports :attr:`~repro.metrics.base.Metric.parallel_safe`
        and the quality slices are array-backed) or ``executor="process"``
        (sub-instances are pickled to workers; shard timings are merged back
        into the parent, see :class:`~repro.utils.timing.Stopwatch`).
    local_search_config:
        Forwarded to any local-search stage (shard and final).

    Returns
    -------
    SolverResult
        Expressed in the original universe's indices.  ``metadata["sharding"]``
        records the shard layout, core-set size, executor and the summed
        per-shard solve seconds; ``metadata["candidates"]`` is the user's
        pool when one was given.
    """
    started = time.perf_counter()
    if executor not in _EXECUTORS:
        raise InvalidParameterError(
            f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
        )
    if max_workers is not None and max_workers < 1:
        raise InvalidParameterError("max_workers must be at least 1")
    if per_shard_p is not None and per_shard_p < 1:
        raise InvalidParameterError("per_shard_p must be at least 1")
    if not isinstance(p, int) or isinstance(p, bool) or p < 0:
        raise InvalidParameterError(
            f"cardinality p must be a non-negative integer, got {p!r}"
        )

    objective = Objective(quality, metric, tradeoff)
    if candidates is not None:
        # Keep the user's first-seen order for delegation and metadata (the
        # restriction-layer convention); sort only the partitioning pool so
        # shards are contiguous (copy-free views on matrix-backed metrics).
        user_pool = check_candidate_pool(candidates, objective.n)
        pool = np.sort(user_pool)
    else:
        user_pool = None
        pool = np.arange(objective.n)
    parts = shard_pool(pool, shards=shards, shard_size=shard_size)

    if len(parts) <= 1:
        # One shard ≡ the plain solve; delegate so results are bit-identical.
        from repro.core.solver import solve

        result = solve(
            quality,
            metric,
            tradeoff=tradeoff,
            p=p,
            algorithm=algorithm,
            candidates=user_pool,
            local_search_config=local_search_config,
        )
        metadata = dict(result.metadata)
        metadata["sharding"] = {
            "shards": 1,
            "shard_sizes": [int(pool.size)],
            "core_size": int(pool.size),
            "degenerate": True,
        }
        return SolverResult(
            selected=result.selected,
            order=result.order,
            objective_value=result.objective_value,
            quality_value=result.quality_value,
            dispersion_value=result.dispersion_value,
            algorithm=result.algorithm,
            iterations=result.iterations,
            elapsed_seconds=result.elapsed_seconds,
            metadata=metadata,
        )

    shard_algorithm = shard_algorithm or "greedy"
    from repro.core.solver import ALGORITHMS, _dispatch

    for name, stage in ((algorithm, "algorithm"), (shard_algorithm, "shard_algorithm")):
        if name not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown {stage} {name!r}; expected one of {ALGORITHMS}"
            )
    keep = per_shard_p if per_shard_p is not None else max(p, 1)
    if materialize_shards is None:
        materialize_shards = shard_algorithm not in _LAZY_FRIENDLY_ALGORITHMS

    # Build the shard sub-instances (cheap: lazy metric slices + weight
    # slices), keeping the winners of shards no bigger than their quota
    # without solving at all.
    restrictions: List[Optional[Restriction]] = []
    payloads = []
    winners: List[np.ndarray] = [np.zeros(0, dtype=int)] * len(parts)
    for index, shard in enumerate(parts):
        if shard.size <= keep:
            winners[index] = shard
            restrictions.append(None)
            continue
        restriction = Restriction(
            objective, shard, metric=_sub_metric(metric, shard, materialize=False)
        )
        restrictions.append(restriction)
        payloads.append(
            (
                index,
                (
                    restriction.objective,
                    shard_algorithm,
                    keep,
                    local_search_config,
                    materialize_shards,
                ),
            )
        )

    shard_watch = Stopwatch()
    weights_view = getattr(objective.quality, "weights_view", None)
    array_backed = weights_view is not None and weights_view() is not None
    # Thread-pooled shard maps need every oracle touched by a worker to be a
    # pure read of immutable NumPy state: the metric must declare itself
    # parallel-safe, and the quality must either expose an array weight view
    # (modular families) or declare `parallel_safe` itself (the built-in
    # submodular families, whose gains/gain-state protocol reads only the
    # immutable similarity/kernel arrays — per-shard states live inside each
    # worker's solve).
    use_pool = (
        max_workers is not None
        and max_workers > 1
        and len(payloads) > 1
        and (
            executor == "process"
            or (
                metric.parallel_safe
                and (array_backed or objective.quality.parallel_safe)
            )
        )
    )
    if use_pool:
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=max_workers) as workers:
            solved = list(workers.map(_solve_shard, [task for _, task in payloads]))
    else:
        solved = [_solve_shard(task) for _, task in payloads]
    for (index, _), (local_winners, elapsed) in zip(payloads, solved):
        restriction = restrictions[index]
        winners[index] = np.asarray(restriction.to_global(local_winners), dtype=int)
        shard_watch.add(elapsed)

    core = np.sort(np.concatenate(winners))
    final_materialize = algorithm not in _LAZY_FRIENDLY_ALGORITHMS
    final_restriction = Restriction(
        objective, core, metric=_sub_metric(metric, core, final_materialize)
    )
    final_p = min(p, core.size)
    if algorithm == "local_search":
        # Seed the final search with the core-set greedy solution instead of
        # the default best-pair basis: the shard stage already paid for good
        # winners, and a bounded search budget should refine them, not
        # rebuild from scratch.
        from repro.core.greedy import greedy_diversify
        from repro.core.local_search import local_search_diversify
        from repro.matroids.uniform import UniformMatroid

        seed = greedy_diversify(final_restriction.objective, final_p)
        final = local_search_diversify(
            final_restriction.objective,
            UniformMatroid(final_restriction.n, final_p),
            config=local_search_config,
            initial=seed.selected,
        )
    else:
        final = _dispatch(
            final_restriction.objective,
            algorithm,
            p=final_p,
            matroid=None,
            local_search_config=local_search_config,
        )
    result = final_restriction.lift(final)

    metadata = dict(result.metadata)
    if user_pool is not None:
        metadata["candidates"] = tuple(user_pool.tolist())
    else:
        del metadata["candidates"]
    metadata["sharding"] = {
        "shards": len(parts),
        "shard_sizes": [int(part.size) for part in parts],
        "core_size": int(core.size),
        "per_shard_p": keep,
        "shard_algorithm": shard_algorithm,
        "materialized_shards": bool(materialize_shards),
        "executor": executor if use_pool else None,
        "shard_seconds": shard_watch.elapsed_seconds,
    }
    return SolverResult(
        selected=result.selected,
        order=result.order,
        objective_value=result.objective_value,
        quality_value=result.quality_value,
        dispersion_value=result.dispersion_value,
        algorithm=result.algorithm,
        iterations=result.iterations,
        elapsed_seconds=time.perf_counter() - started,
        metadata=metadata,
    )
