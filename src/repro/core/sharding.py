"""Sharded core-set solving for huge universes.

Every solve path below :func:`~repro.core.solver.solve` is O(n²)-in-memory
once the metric is materialized, which caps the universe at tens of
thousands of elements.  This module lifts that cap with the classic
*composable core-set* scheme for max-sum diversification:

1. **Partition** the universe (or candidate pool) into contiguous shards.
2. **Solve each shard** as an independent sub-instance built by the
   restriction layer (:class:`~repro.core.restriction.Restriction`), using
   the lazy metric tier (:meth:`~repro.metrics.base.Metric.restrict_lazy` /
   :meth:`~repro.metrics.base.Metric.block`) so no step ever touches the
   global ``n × n`` matrix.  Shards are independent, so the map optionally
   runs on a thread or process pool.
3. **Union** the per-shard winners into a small core-set and run the final
   algorithm on that union, lifting indices back into the original universe.

With ``per_shard_p = p`` winners per shard the union is the standard
composable core-set for sum-dispersion objectives: each shard keeps every
element the global optimum could need from it up to the approximation factor
of the shard algorithm, so the two-stage objective stays within a constant
factor of the single-stage one (the benchmarks guard a ≥0.95 parity ratio
against global greedy empirically).

Memory model: the peak footprint is O(shard_size² + core²) — the one shard
block being solved (when the shard algorithm needs a materialized block at
all; plain greedy runs on O(shard_size · d) lazy state) plus the final
core-set block — instead of O(n²).

Fault tolerance
---------------
Shard independence is also what makes the map *recoverable*: losing a shard
loses only that shard's winners, never the solve.  The shard map therefore
harvests futures individually (instead of ``Executor.map``) so that

* a shard exceeding ``shard_timeout_s`` or a crashed process-pool worker
  (``BrokenProcessPool``) abandons the pool — ``shutdown(wait=False,
  cancel_futures=True)`` — harvests whatever already finished, and re-runs
  the unfinished shards **serially in-process** with bounded exponential-
  backoff retries;
* a shard that still fails serially contributes zero winners and a
  structured entry in ``metadata["sharding"]["failures"]`` — the core-set
  simply shrinks, the final stage still runs, and
  ``metadata["degraded"] = True`` flags the loss;
* a cooperative :class:`~repro.utils.deadline.Deadline` caps the whole
  pipeline: it is shipped *into* every shard solve (re-anchoring across
  process boundaries) and checked between harvests, so expiry stops
  dispatching, keeps the winners gathered so far, and returns an interrupted
  but feasible result;
* periodic :class:`~repro.core.checkpoint.SolveCheckpoint` snapshots record
  the global winners of every solved shard, so a resumed run skips straight
  to the shards that were lost.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro._types import Element
from repro.core.checkpoint import SolveCheckpoint, universe_fingerprint
from repro.core.kernels import weights_view_of
from repro.core.local_search import LocalSearchConfig
from repro.core.objective import Objective
from repro.core.restriction import Restriction
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction
from repro.metrics.base import Metric
from repro.metrics.matrix import DistanceMatrix
from repro.obs.instrument import (
    SHARD_FAILURES,
    SOLVE_SECONDS,
    SOLVES,
    maybe_span,
    maybe_start_span,
    phase_timings,
)
from repro.obs.trace import SpanBundle, Trace
from repro.utils.deadline import Deadline, mark_interrupted
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_candidate_pool

__all__ = ["shard_pool", "solve_sharded", "sub_metric"]

#: Shard-stage algorithms that run efficiently on a *lazy* sub-metric (their
#: hot loops only need rows, which feature metrics answer in O(k·d)).  Every
#: other algorithm wants the shard's distance block materialized so the
#: vectorized kernels apply.  Submodular quality keeps shard solves fast on
#: either tier: the restriction layer's quality views compose their parent's
#: batched marginal-gain states, so each per-shard greedy runs the CELF fast
#: path instead of a per-candidate oracle loop.
_LAZY_FRIENDLY_ALGORITHMS = frozenset({"auto", "greedy", "mmr"})

_EXECUTORS = ("thread", "process")

#: Ceiling on a single retry backoff sleep so a misconfigured
#: ``retry_backoff_s`` cannot stall the serial fallback for minutes.
_MAX_BACKOFF_SECONDS = 5.0


def shard_pool(
    pool: np.ndarray,
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[np.ndarray]:
    """Split a sorted candidate pool into contiguous, non-empty shards.

    Exactly one of ``shards`` / ``shard_size`` may drive the split (when both
    are given, ``shards`` wins).  The shard count is clamped to the pool size
    and empty shards (requested count exceeding the pool) are dropped, so the
    result is always a partition of ``pool`` into non-empty pieces.
    """
    if shards is None and shard_size is None:
        raise InvalidParameterError("supply shards or shard_size")
    if shards is None:
        if shard_size < 1:
            raise InvalidParameterError("shard_size must be at least 1")
        shards = -(-pool.size // shard_size) if pool.size else 1
    if shards < 1:
        raise InvalidParameterError("shards must be at least 1")
    count = min(shards, max(pool.size, 1))
    return [part for part in np.array_split(pool, count) if part.size]


def _block_matrix(metric: Metric, pool: np.ndarray) -> DistanceMatrix:
    """Materialize ``pool × pool`` distances into a :class:`DistanceMatrix`.

    The block is symmetrized first: GEMM-based blocks (cosine) can disagree
    between ``B[i, j]`` and ``B[j, i]`` by a few ulps of reassociation noise,
    which the :class:`DistanceMatrix` axiom check would reject at high
    dimension.  Exactly-symmetric blocks (euclidean, matrix slices) pass
    through bitwise unchanged since ``(x + x) / 2 == x``.
    """
    block = metric.block(pool, pool)
    return DistanceMatrix((block + block.T) / 2.0, copy=False)


def sub_metric(metric: Metric, pool: np.ndarray, materialize: bool) -> Metric:
    """The restriction of ``metric`` onto ``pool`` for one shard solve.

    ``materialize=True`` produces a :class:`DistanceMatrix` (a copy-free view
    for matrix-backed parents, a chunk-computed block otherwise) so the
    vectorized kernels apply; ``materialize=False`` prefers the lazy tier and
    only falls back to the default O(k²) restriction for pure oracle metrics.

    Public because the dynamic session's shard-local repair builds the same
    per-shard restrictions outside a full :func:`solve_sharded` run.
    """
    if materialize:
        if metric.matrix_view() is not None:
            return metric.restrict(pool)
        return _block_matrix(metric, pool)
    lazy = metric.restrict_lazy(pool)
    return lazy if lazy is not None else metric.restrict(pool)


#: Backward-compatible private alias (pre-dates the dynamic session).
_sub_metric = sub_metric


def _materialize_objective(objective: Objective) -> Objective:
    """Swap a lazy metric for its block-materialized :class:`DistanceMatrix`."""
    if objective.metric.matrix_view() is not None:
        return objective
    matrix = _block_matrix(objective.metric, np.arange(objective.n))
    return Objective(objective.quality, matrix, objective.tradeoff)


def _solve_shard(
    payload: Tuple[
        Objective,
        str,
        int,
        Optional[LocalSearchConfig],
        bool,
        Optional[Deadline],
        int,
        bool,
    ],
) -> Tuple[List[Element], SpanBundle]:
    """Solve one shard sub-instance; returns (local winners, span bundle).

    Top-level so process pools can pickle it.  Materialization happens *here*
    rather than in the parent, so with a pool the block computations run in
    the workers (threads: NumPy releases the GIL; processes: each worker owns
    its block) and the parent never holds more than one shard's payload.  The
    deadline rides along in the payload: pickling re-anchors it with the
    parent's remaining budget, so even inside a process-pool worker the
    per-shard greedy stops cooperatively.

    Timing and tracing share one code path: the worker records into its own
    local :class:`~repro.obs.trace.Trace` (contextvars and pickled traces
    cannot cross pool boundaries) and ships the bundle back with the result —
    the bundle's root ``shard`` span *is* the shard's elapsed-seconds record,
    and when the parent solve is traced (``payload[-1]``) the inner solve
    phases ride along and are adopted into the parent trace.
    """
    objective, algorithm, p, config, materialize, deadline, index, traced = payload
    from repro.core.solver import _dispatch

    worker_trace = Trace()
    with worker_trace.span("shard", shard=index, size=objective.n) as handle:
        if materialize:
            with maybe_span(
                worker_trace if traced else None, "materialize", shard=index
            ):
                objective = _materialize_objective(objective)
        result = _dispatch(
            objective,
            algorithm,
            p=p,
            matroid=None,
            local_search_config=config,
            deadline=deadline,
            trace=worker_trace if traced else None,
        )
        handle.set(selected=len(result.selected))
    return sorted(result.selected), worker_trace.bundle()


def solve_sharded(
    quality: SetFunction,
    metric: Metric,
    *,
    tradeoff: float,
    p: int,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    algorithm: str = "auto",
    shard_algorithm: Optional[str] = None,
    per_shard_p: Optional[int] = None,
    candidates: Optional[Iterable[Element]] = None,
    materialize_shards: Optional[bool] = None,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    local_search_config: Optional[LocalSearchConfig] = None,
    deadline: Union[None, float, Deadline] = None,
    shard_timeout_s: Optional[float] = None,
    shard_retries: int = 1,
    retry_backoff_s: float = 0.05,
    checkpoint_every: Optional[int] = None,
    on_checkpoint: Optional[Callable[[SolveCheckpoint], None]] = None,
    resume_from: Optional[SolveCheckpoint] = None,
    trace: Optional[Trace] = None,
) -> SolverResult:
    """Solve a huge cardinality-constrained instance via a sharded core-set.

    Parameters
    ----------
    quality, metric, tradeoff:
        The instance ``(f, d, λ)``.  The metric is never asked for its full
        matrix: shard solves see at most a ``shard_size²`` block.
    p:
        Cardinality constraint.  Matroid constraints are not supported — the
        core-set union argument is cardinality-specific.
    shards, shard_size:
        Partition control: an explicit shard count, or a target elements-per-
        shard (the count is derived).  One of the two is required.  A single
        shard degenerates to — and returns exactly the result of — the plain
        unsharded solve.
    algorithm:
        Final-stage algorithm run on the core-set union, as in
        :func:`~repro.core.solver.solve` (the core-set is small, so expensive
        algorithms are affordable here).
    shard_algorithm:
        Per-shard algorithm (default ``"greedy"`` — Greedy B's 2-approximation
        is what the composability argument wants, and it runs on lazy O(k·d)
        state).
    per_shard_p:
        Winners kept per shard (default ``p``).  Raising it grows the
        core-set and tightens parity at the cost of final-stage work.
    candidates:
        Optional candidate pool; sharding then partitions the pool instead of
        the full universe.
    materialize_shards:
        Force (``True``) or forbid (``False``) materializing each shard's
        distance block.  Default ``None`` picks per algorithm: lazy for
        greedy-style shard algorithms, materialized for kernels that need the
        block (local search, pair seeding, Greedy A).
    max_workers, executor:
        Optional pool for the shard map: ``executor="thread"`` (honored only
        when the metric reports :attr:`~repro.metrics.base.Metric.parallel_safe`
        and the quality slices are array-backed) or ``executor="process"``
        (sub-instances are pickled to workers; shard timings are merged back
        into the parent, see :class:`~repro.utils.timing.Stopwatch`).
    local_search_config:
        Forwarded to any local-search stage (shard and final).
    deadline:
        Optional cooperative wall-clock budget (seconds or a
        :class:`~repro.utils.deadline.Deadline`) covering the whole pipeline.
        It is shipped into every shard solve and checked between shard
        harvests and before the final stage; on expiry the result is built
        from whatever winners exist with ``metadata["interrupted"] = True``.
    shard_timeout_s:
        Per-shard wall-clock timeout for pooled shard solves.  A shard that
        exceeds it is treated as lost: the pool is abandoned (a hung worker
        cannot be cancelled individually), finished shards are harvested and
        the unfinished ones re-run serially in-process.
    shard_retries:
        Bounded retry budget for *failing* (raising) shard solves in the
        serial fallback path, with exponential backoff starting at
        ``retry_backoff_s``.  0 disables retries.
    retry_backoff_s:
        Initial backoff sleep between serial retries, doubled per attempt
        (capped at 5 s).
    checkpoint_every, on_checkpoint:
        Emit a pickle-safe :class:`~repro.core.checkpoint.SolveCheckpoint`
        recording every solved shard's global winners after each
        ``checkpoint_every`` shard completions (default 1 when only the
        callback is given).
    resume_from:
        A ``kind="sharded"`` checkpoint from a previous run over the *same
        partition* (shard layout is verified): already-solved shards are
        skipped and their recorded winners reused.  Ignored by the
        single-shard degenerate path.
    trace:
        Optional :class:`~repro.obs.trace.Trace`.  The pipeline records a
        ``solve_sharded`` root span with ``restrict``, per-``shard`` and
        ``final_solve`` children; pool workers trace locally and their spans
        are adopted back with the shard results, and shards whose workers
        timed out or crashed get a synthetic ``shard`` span whose ``status``
        names the failure stage (``"worker_timeout"``/``"worker_crash"``/…)
        so lost work is visible in the trace rather than silent.
        ``metadata["timings"]`` gains the per-phase breakdown.

    Returns
    -------
    SolverResult
        Expressed in the original universe's indices.  ``metadata["sharding"]``
        records the shard layout, core-set size, executor, the summed
        per-shard solve seconds and any per-shard ``failures``;
        ``metadata["candidates"]`` is the user's pool when one was given, and
        ``metadata["degraded"]`` is ``True`` when any shard was lost or the
        pool fell back to serial execution.
    """
    started = time.perf_counter()
    if executor not in _EXECUTORS:
        raise InvalidParameterError(
            f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
        )
    if max_workers is not None and max_workers < 1:
        raise InvalidParameterError("max_workers must be at least 1")
    if per_shard_p is not None and per_shard_p < 1:
        raise InvalidParameterError("per_shard_p must be at least 1")
    if not isinstance(p, int) or isinstance(p, bool) or p < 0:
        raise InvalidParameterError(
            f"cardinality p must be a non-negative integer, got {p!r}"
        )
    if shard_timeout_s is not None and shard_timeout_s <= 0:
        raise InvalidParameterError("shard_timeout_s must be positive")
    if shard_retries < 0:
        raise InvalidParameterError("shard_retries must be non-negative")
    if retry_backoff_s < 0:
        raise InvalidParameterError("retry_backoff_s must be non-negative")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise InvalidParameterError("checkpoint_every must be at least 1")
    if on_checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 1
    deadline = Deadline.coerce(deadline)

    objective = Objective(quality, metric, tradeoff)
    if candidates is not None:
        # Keep the user's first-seen order for delegation and metadata (the
        # restriction-layer convention); sort only the partitioning pool so
        # shards are contiguous (copy-free views on matrix-backed metrics).
        user_pool = check_candidate_pool(candidates, objective.n)
        pool = np.sort(user_pool)
    else:
        user_pool = None
        pool = np.arange(objective.n)
    parts = shard_pool(pool, shards=shards, shard_size=shard_size)

    if len(parts) <= 1:
        # One shard ≡ the plain solve; delegate so results are bit-identical.
        # Checkpoint/resume does not apply to the degenerate path (there is
        # no shard progress to snapshot); the deadline still does.
        from repro.core.solver import solve

        result = solve(
            quality,
            metric,
            tradeoff=tradeoff,
            p=p,
            algorithm=algorithm,
            candidates=user_pool,
            local_search_config=local_search_config,
            deadline_s=deadline,
            trace=trace,
        )
        metadata = dict(result.metadata)
        metadata["sharding"] = {
            "shards": 1,
            "shard_sizes": [int(pool.size)],
            "core_size": int(pool.size),
            "degenerate": True,
        }
        return SolverResult(
            selected=result.selected,
            order=result.order,
            objective_value=result.objective_value,
            quality_value=result.quality_value,
            dispersion_value=result.dispersion_value,
            algorithm=result.algorithm,
            iterations=result.iterations,
            elapsed_seconds=result.elapsed_seconds,
            metadata=metadata,
        )

    shard_algorithm = shard_algorithm or "greedy"
    from repro.core.solver import ALGORITHMS, _dispatch

    for name, stage in ((algorithm, "algorithm"), (shard_algorithm, "shard_algorithm")):
        if name not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown {stage} {name!r}; expected one of {ALGORITHMS}"
            )
    keep = per_shard_p if per_shard_p is not None else max(p, 1)
    if materialize_shards is None:
        materialize_shards = shard_algorithm not in _LAZY_FRIENDLY_ALGORITHMS

    shard_sizes = tuple(int(part.size) for part in parts)
    # Shard layout is deliberately outside the fingerprint: a layout change
    # has its own dedicated InvalidParameterError below.
    fingerprint = universe_fingerprint(
        "solve", "sharded", objective.n, objective.tradeoff
    )
    resumed: Dict[int, np.ndarray] = {}
    if resume_from is not None:
        resume_from.require("sharded", objective.n, fingerprint=fingerprint)
        if tuple(resume_from.shard_sizes) != shard_sizes:
            raise InvalidParameterError(
                f"checkpoint shard layout {tuple(resume_from.shard_sizes)} does "
                f"not match the current partition {shard_sizes}"
            )
        resumed = {
            int(index): np.asarray(tuple(global_winners), dtype=int)
            for index, global_winners in resume_from.shard_winners.items()
        }

    # Explicit-start root span: the pipeline below has several return points
    # (empty core-set, normal) and the span must outlive them all; the
    # ``finalize_trace`` helper closes it and derives ``metadata["timings"]``.
    root = maybe_start_span(
        trace,
        "solve_sharded",
        n=objective.n,
        p=p,
        shards=len(parts),
        executor=executor,
    )

    def finalize_trace(metadata: dict, elapsed: float) -> None:
        if SOLVES.enabled():
            SOLVES.inc(path="sharded")
            SOLVE_SECONDS.observe(elapsed, path="sharded")
        if trace is None:
            return
        root.set(
            core_size=metadata["sharding"]["core_size"],
            degraded=degraded,
            interrupted=interrupted,
        )
        root.finish()
        metadata["timings"] = phase_timings(trace, root.id, total=elapsed)

    # Build the shard sub-instances (cheap: lazy metric slices + weight
    # slices), keeping the winners of shards no bigger than their quota
    # without solving at all, and skipping shards a resume checkpoint
    # already covers.
    restrictions: List[Optional[Restriction]] = []
    payloads: List[Tuple[int, tuple]] = []
    winners: List[np.ndarray] = [np.zeros(0, dtype=int)] * len(parts)
    solved_mask = [False] * len(parts)
    with maybe_span(trace, "restrict", shards=len(parts)):
        for index, shard in enumerate(parts):
            if index in resumed:
                winners[index] = resumed[index]
                solved_mask[index] = True
                restrictions.append(None)
                continue
            if shard.size <= keep:
                winners[index] = shard
                solved_mask[index] = True
                restrictions.append(None)
                continue
            restriction = Restriction(
                objective, shard, metric=_sub_metric(metric, shard, materialize=False)
            )
            restrictions.append(restriction)
            payloads.append(
                (
                    index,
                    (
                        restriction.objective,
                        shard_algorithm,
                        keep,
                        local_search_config,
                        materialize_shards,
                        deadline,
                        index,
                        trace is not None,
                    ),
                )
            )

    shard_watch = Stopwatch()
    failures: List[dict] = []
    interrupted = False
    degraded = False
    completions = 0

    def emit_checkpoint() -> None:
        on_checkpoint(
            SolveCheckpoint(
                kind="sharded",
                n=objective.n,
                p=p,
                shard_winners={
                    index: tuple(np.asarray(winners[index]).tolist())
                    for index in range(len(parts))
                    if solved_mask[index]
                },
                shard_sizes=shard_sizes,
                elapsed_seconds=time.perf_counter() - started,
                metadata={
                    "algorithm": algorithm,
                    "shard_algorithm": shard_algorithm,
                },
                fingerprint=fingerprint,
            )
        )

    def record_success(
        index: int, local_winners: List[Element], bundle: SpanBundle
    ) -> None:
        nonlocal completions
        restriction = restrictions[index]
        winners[index] = np.asarray(restriction.to_global(local_winners), dtype=int)
        solved_mask[index] = True
        # Tolerant timing merge: only shards that actually finished ship a
        # span bundle back; lost workers simply contribute nothing here
        # instead of poisoning the merged total.  The bundle's root span
        # duration *is* the shard's elapsed time — span and stopwatch
        # accounting share this one code path.
        shard_watch.add(bundle.elapsed)
        if trace is not None:
            trace.adopt(bundle, parent_id=root.id)
        completions += 1
        if on_checkpoint is not None and completions % checkpoint_every == 0:
            emit_checkpoint()

    def record_failure(index: int, stage: str, error: BaseException) -> None:
        failures.append({"shard": index, "stage": stage, "error": repr(error)})
        if SHARD_FAILURES.enabled():
            SHARD_FAILURES.inc(stage=stage)
        if trace is not None:
            # A crashed or timed-out worker takes its locally recorded spans
            # with it; record a synthetic zero-duration shard span so the
            # loss is visible in the trace instead of silent.
            trace.record_span(
                "shard",
                parent_id=root.id,
                status=stage,
                shard=index,
                error=repr(error),
            )

    def run_serial(tasks: List[Tuple[int, tuple]]) -> None:
        """In-process shard solves with bounded exponential-backoff retries."""
        nonlocal interrupted, degraded
        for index, task in tasks:
            if deadline is not None and deadline.expired():
                interrupted = True
                break
            last_error: Optional[BaseException] = None
            for attempt in range(shard_retries + 1):
                if attempt and retry_backoff_s > 0:
                    time.sleep(
                        min(
                            retry_backoff_s * (2 ** (attempt - 1)),
                            _MAX_BACKOFF_SECONDS,
                        )
                    )
                try:
                    local_winners, bundle = _solve_shard(task)
                except Exception as error:
                    last_error = error
                    continue
                record_success(index, local_winners, bundle)
                last_error = None
                break
            if last_error is not None:
                # The shard is lost: record it and move on with a smaller
                # core-set rather than failing the whole solve.
                degraded = True
                record_failure(index, "serial", last_error)

    def run_pool(tasks: List[Tuple[int, tuple]]) -> List[Tuple[int, tuple]]:
        """Pooled shard map; returns the shards that need the serial fallback.

        Futures are harvested in submission order with a per-shard timeout.
        Any unrecoverable pool condition — a shard overrunning
        ``shard_timeout_s`` (a hung worker cannot be cancelled individually)
        or a crashed worker process (``BrokenProcessPool``) — abandons the
        pool with ``shutdown(wait=False, cancel_futures=True)``, keeps every
        already-finished shard's result, and hands the rest back for serial
        in-process execution.  The pool is never allowed to kill the solve.
        """
        nonlocal interrupted, degraded
        from concurrent.futures import (
            BrokenExecutor,
            ProcessPoolExecutor,
            ThreadPoolExecutor,
        )
        from concurrent.futures import TimeoutError as FutureTimeoutError

        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        fallback: List[Tuple[int, tuple]] = []
        workers = pool_cls(max_workers=max_workers)
        abandoned = False
        try:
            submitted = [
                (index, task, workers.submit(_solve_shard, task))
                for index, task in tasks
            ]
            for index, task, future in submitted:
                if abandoned:
                    # Completed futures keep their results even after the
                    # pool broke or was abandoned; harvest them for free.
                    if future.done():
                        try:
                            record_success(index, *future.result(timeout=0))
                        except Exception as error:
                            record_failure(index, "worker", error)
                            fallback.append((index, task))
                    elif not interrupted:
                        fallback.append((index, task))
                    continue
                budget = shard_timeout_s
                if deadline is not None:
                    remaining = deadline.remaining()
                    budget = remaining if budget is None else min(budget, remaining)
                try:
                    local_winners, bundle = future.result(timeout=budget)
                except FutureTimeoutError as error:
                    abandoned = True
                    if deadline is not None and deadline.expired():
                        # The global budget ran out, not the shard; skip the
                        # unfinished shards without blaming them.
                        interrupted = True
                    else:
                        degraded = True
                        record_failure(index, "worker_timeout", error)
                        fallback.append((index, task))
                except BrokenExecutor as error:
                    abandoned = True
                    degraded = True
                    record_failure(index, "worker_crash", error)
                    fallback.append((index, task))
                except Exception as error:
                    # The shard itself raised inside a healthy worker; retry
                    # it serially, keep harvesting the others from the pool.
                    record_failure(index, "worker", error)
                    fallback.append((index, task))
                else:
                    record_success(index, local_winners, bundle)
        finally:
            workers.shutdown(wait=False, cancel_futures=True)
        return fallback

    array_backed = weights_view_of(objective.quality) is not None
    # Thread-pooled shard maps need every oracle touched by a worker to be a
    # pure read of immutable NumPy state: the metric must declare itself
    # parallel-safe, and the quality must either expose an array weight view
    # (modular families) or declare `parallel_safe` itself (the built-in
    # submodular families, whose gains/gain-state protocol reads only the
    # immutable similarity/kernel arrays — per-shard states live inside each
    # worker's solve).
    use_pool = (
        max_workers is not None
        and max_workers > 1
        and len(payloads) > 1
        and (
            executor == "process"
            or (
                metric.parallel_safe
                and (array_backed or objective.quality.parallel_safe)
            )
        )
    )
    if deadline is not None and deadline.expired():
        interrupted = True
    elif use_pool:
        fallback = run_pool(payloads)
        if fallback:
            degraded = True
            run_serial(fallback)
    else:
        run_serial(payloads)

    core = np.sort(np.concatenate(winners))
    if core.size == 0:
        # Every shard was lost (or the deadline expired before any winners
        # existed): the only feasible answer left is the empty selection.
        metadata = {"p": p}
        if user_pool is not None:
            metadata["candidates"] = tuple(user_pool.tolist())
        metadata["sharding"] = {
            "shards": len(parts),
            "shard_sizes": list(shard_sizes),
            "core_size": 0,
            "per_shard_p": keep,
            "shard_algorithm": shard_algorithm,
            "materialized_shards": bool(materialize_shards),
            "executor": executor if use_pool else None,
            "shard_seconds": shard_watch.elapsed_seconds,
            "failures": failures,
            "failed_shards": sorted(
                index for index in range(len(parts)) if not solved_mask[index]
            ),
        }
        if degraded:
            metadata["degraded"] = True
            metadata["degradation"] = "shard_map"
        if interrupted:
            mark_interrupted(metadata, deadline, "shard_map")
        elapsed = time.perf_counter() - started
        finalize_trace(metadata, elapsed)
        return build_result(
            objective,
            set(),
            [],
            algorithm=algorithm,
            iterations=0,
            elapsed_seconds=elapsed,
            metadata=metadata,
        )

    final_materialize = algorithm not in _LAZY_FRIENDLY_ALGORITHMS
    with maybe_span(
        trace, "final_solve", core=int(core.size), algorithm=algorithm
    ):
        final_restriction = Restriction(
            objective, core, metric=_sub_metric(metric, core, final_materialize)
        )
        final_p = min(p, core.size)
        if algorithm == "local_search":
            # Seed the final search with the core-set greedy solution instead
            # of the default best-pair basis: the shard stage already paid
            # for good winners, and a bounded search budget should refine
            # them, not rebuild from scratch.
            from repro.core.greedy import greedy_diversify
            from repro.core.local_search import local_search_diversify
            from repro.matroids.uniform import UniformMatroid

            seed = greedy_diversify(
                final_restriction.objective,
                final_p,
                deadline=deadline,
                trace=trace,
            )
            final = local_search_diversify(
                final_restriction.objective,
                UniformMatroid(final_restriction.n, final_p),
                config=local_search_config,
                initial=seed.selected,
                deadline=deadline,
            )
        else:
            final = _dispatch(
                final_restriction.objective,
                algorithm,
                p=final_p,
                matroid=None,
                local_search_config=local_search_config,
                deadline=deadline,
                trace=trace,
            )
        result = final_restriction.lift(final)

    metadata = dict(result.metadata)
    if user_pool is not None:
        metadata["candidates"] = tuple(user_pool.tolist())
    else:
        del metadata["candidates"]
    metadata["sharding"] = {
        "shards": len(parts),
        "shard_sizes": list(shard_sizes),
        "core_size": int(core.size),
        "per_shard_p": keep,
        "shard_algorithm": shard_algorithm,
        "materialized_shards": bool(materialize_shards),
        "executor": executor if use_pool else None,
        "shard_seconds": shard_watch.elapsed_seconds,
    }
    if failures or any(not flag for flag in solved_mask):
        metadata["sharding"]["failures"] = failures
        metadata["sharding"]["failed_shards"] = sorted(
            index for index in range(len(parts)) if not solved_mask[index]
        )
    if resumed:
        metadata["sharding"]["resumed_shards"] = sorted(resumed)
    if degraded:
        metadata["degraded"] = True
        metadata["degradation"] = "shard_map"
    if interrupted:
        mark_interrupted(metadata, deadline, "shard_map")
    elapsed = time.perf_counter() - started
    finalize_trace(metadata, elapsed)
    return SolverResult(
        selected=result.selected,
        order=result.order,
        objective_value=result.objective_value,
        quality_value=result.quality_value,
        dispersion_value=result.dispersion_value,
        algorithm=result.algorithm,
        iterations=result.iterations,
        elapsed_seconds=elapsed,
        metadata=metadata,
    )
