"""Vectorized distance kernels — the matrix-backed fast path.

The algorithms in :mod:`repro.core` are written twice:

* a **reference path** of per-pair Python loops that only needs the
  ``distance(u, v)`` oracle (correct for any :class:`~repro.metrics.base.Metric`
  and any quality function), and
* a **kernel path** that replaces each hot loop by one NumPy array operation
  when the metric exposes :meth:`~repro.metrics.base.Metric.matrix_view` and
  the quality function is modular.

This module holds the kernel path.  Everything here operates on plain arrays
(the weight vector ``w``, the distance matrix ``D``, the marginal vector
``margins`` with ``margins[u] = d_u(S)``) so the same kernels serve Greedy B's
pair seeding, the local-search best-swap scan, the streaming arrival rule and
the dynamic-update engine.  The key identities (paper Sections 4–6):

* pair score       ``w(x) + w(y) + λ·d(x, y)``
* swap gain        ``φ(S − v + u) − φ(S)
                     = (w(u) − w(v)) + λ·((d_u(S) − d(u, v)) − d_v(S))``

Each scan is a masked argmax over the corresponding score matrix, turning the
O(n·p) inner Python loop per local-search iteration into a handful of BLAS
level array operations.
"""

from __future__ import annotations

import math
import warnings

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro._types import Element
from repro.exceptions import NumericalDegradationWarning
from repro.functions.base import SetFunction
from repro.matroids.base import Matroid

__all__ = [
    "modular_weights",
    "weights_view_of",
    "matrix_fast_path",
    "solution_split",
    "set_margins",
    "best_addition_scan",
    "pair_argmax",
    "swap_gain_matrix",
    "swap_gain_matrix_general",
    "best_swap_scan",
    "best_swap_scan_from_gains",
    "arrival_swap_gains",
    "removal_gain_state",
    "swap_kernel_supported",
    "matroid_swap_vectorized",
]


def weights_view_of(quality: SetFunction) -> Optional[np.ndarray]:
    """``quality.weights_view()``, tolerant of instances that hide the hook.

    ``weights_view`` lives on the :class:`SetFunction` base, but subclasses
    (and tests) may mask it with a plain ``None`` attribute to opt out of the
    array fast path; anything non-callable means "no view".
    """
    accessor = getattr(quality, "weights_view", None)
    return accessor() if callable(accessor) else None


def modular_weights(quality: SetFunction) -> Optional[np.ndarray]:
    """Return the weight vector of a modular quality function, else ``None``.

    For a modular ``f``, ``f(S) = Σ_{u ∈ S} w(u)`` with
    ``w(u) = f({u})``; the kernels consume ``w`` directly instead of calling
    the value oracle per element per scan.  Families exposing a
    ``weights_view`` accessor (:class:`~repro.functions.modular.ModularFunction`,
    :class:`~repro.functions.modular.ZeroFunction`) return it in O(1);
    other modular functions (e.g. modular mixtures) pay one oracle sweep per
    call, so per-arrival hot paths should cache the result.
    """
    if not quality.is_modular:
        return None
    view = weights_view_of(quality)
    if view is not None:
        return view
    return np.fromiter(
        (quality.marginal(u, frozenset()) for u in range(quality.n)),
        dtype=float,
        count=quality.n,
    )


def matrix_fast_path(objective) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Return ``(weights, matrix)`` when the kernel preconditions hold.

    The kernel path needs a matrix-backed metric *and* modular quality;
    otherwise ``None`` is returned and callers use their reference loops.
    Both arrays are shared storage — treat them as read-only.
    """
    matrix = objective.metric.matrix_view()
    if matrix is None:
        return None
    weights = modular_weights(objective.quality)
    if weights is None:
        return None
    return weights, matrix


def solution_split(
    n: int, solution: Iterable[Element]
) -> Tuple[np.ndarray, np.ndarray]:
    """Split the universe into sorted ``(inside, outside)`` index arrays.

    ``inside`` are the members of ``solution`` and ``outside`` everything
    else; both ascending, which fixes the deterministic tie-breaking order of
    the swap scans.
    """
    inside = np.fromiter(sorted(solution), dtype=int)
    outside_mask = np.ones(n, dtype=bool)
    outside_mask[inside] = False
    outside = np.nonzero(outside_mask)[0]
    return inside, outside


def set_margins(matrix: np.ndarray, members: Iterable[Element]) -> np.ndarray:
    """Compute ``margins[u] = d_u(S)`` for every ``u`` with one column sum."""
    idx = np.fromiter(members, dtype=int)
    if idx.size == 0:
        return np.zeros(matrix.shape[0], dtype=float)
    return matrix[:, idx].sum(axis=1)


def best_addition_scan(
    weights: np.ndarray,
    tradeoff: float,
    margins: np.ndarray,
    candidates: np.ndarray,
) -> Optional[Tuple[Element, float]]:
    """Best element to *add* by true marginal ``w(u) + λ·d_u(S)``.

    The refill primitive of the dynamic engine: after a solution member is
    deleted, the replacement maximizing the true marginal is one masked
    argmax over the candidate pool (``margins`` must be synchronized with the
    current solution).  Returns ``(element, marginal)`` or ``None`` on an
    empty pool.  Ties resolve to the lowest candidate in ``candidates``
    order, matching the reference argmax loops.
    """
    idx = np.asarray(candidates, dtype=int)
    if idx.size == 0:
        return None
    scores = weights[idx] + tradeoff * margins[idx]
    i = int(np.argmax(scores))
    return int(idx[i]), float(scores[i])


def pair_argmax(
    weights: np.ndarray,
    matrix: np.ndarray,
    tradeoff: float,
    pool: Sequence[Element],
    *,
    mask: Optional[np.ndarray] = None,
) -> Optional[Tuple[Element, Element, float]]:
    """Best pair ``{x, y}`` by ``w(x) + w(y) + λ·d(x, y)`` over ``pool``.

    Only the upper triangle in *pool order* is scanned, so ties resolve to the
    pair the reference double loop would have picked.  ``mask``, when given,
    is an additional boolean feasibility matrix aligned with ``pool`` (e.g. a
    matroid's :meth:`~repro.matroids.base.Matroid.pair_feasibility_mask`
    restricted to the pool).  Returns ``None`` when no admissible pair exists.
    """
    idx = np.asarray(pool, dtype=int)
    if idx.size < 2:
        return None
    scores = (
        weights[idx][:, None]
        + weights[idx][None, :]
        + tradeoff * matrix[np.ix_(idx, idx)]
    )
    admissible = np.triu(np.ones((idx.size, idx.size), dtype=bool), k=1)
    if mask is not None:
        admissible &= mask
    if not admissible.any():
        return None
    scores = np.where(admissible, scores, -np.inf)
    flat = int(np.argmax(scores))
    i, j = divmod(flat, idx.size)
    return int(idx[i]), int(idx[j]), float(scores[i, j])


def swap_gain_matrix(
    weights: np.ndarray,
    matrix: np.ndarray,
    tradeoff: float,
    margins: np.ndarray,
    incoming: np.ndarray,
    outgoing: np.ndarray,
) -> np.ndarray:
    """Gain matrix ``G[i, j] = φ(S − outgoing[j] + incoming[i]) − φ(S)``.

    Uses the O(1)-per-entry identity
    ``(w_in − w_out) + λ·((d_in(S) − D[in, out]) − d_out(S))`` with the
    marginals ``d_·(S)`` supplied by the caller (a tracker view or
    :func:`set_margins`).
    """
    cross = matrix[np.ix_(incoming, outgoing)]
    distance_gain = (margins[incoming][:, None] - cross) - margins[outgoing][None, :]
    quality_gain = weights[incoming][:, None] - weights[outgoing][None, :]
    return quality_gain + tradeoff * distance_gain


def swap_gain_matrix_general(
    quality_gain: np.ndarray,
    matrix: np.ndarray,
    tradeoff: float,
    margins: np.ndarray,
    incoming: np.ndarray,
    outgoing: np.ndarray,
) -> np.ndarray:
    """Swap-gain matrix with a *precomputed* quality-gain matrix.

    The submodular fast path: ``quality_gain[i, j] = f(S − outgoing[j] +
    incoming[i]) − f(S)`` comes from the batched marginal-gain protocol
    (one :meth:`~repro.functions.base.SetFunction.gains` batch per outgoing
    element against the ``S − outgoing[j]`` state), and the distance part is
    the same O(1)-per-entry identity as :func:`swap_gain_matrix`.
    """
    cross = matrix[np.ix_(incoming, outgoing)]
    distance_gain = (margins[incoming][:, None] - cross) - margins[outgoing][None, :]
    return quality_gain + tradeoff * distance_gain


def best_swap_scan_from_gains(
    gains: np.ndarray,
    incoming: np.ndarray,
    outgoing: np.ndarray,
    *,
    feasible: Optional[np.ndarray] = None,
    threshold: float = 0.0,
    first_improvement: bool = False,
) -> Optional[Tuple[Element, Element, float]]:
    """Select the accepted swap from a precomputed gain matrix.

    Shared selection logic of the modular and submodular kernel scans: the
    best (or, with ``first_improvement``, the first row-major) admissible
    entry strictly exceeding ``threshold``, or ``None``.

    NaN gains (a poisoned oracle slipping past construction checks) would
    otherwise hijack ``argmax`` — NaN wins every comparison there — and then
    fail the ``best > threshold`` test, silently ending the search.  The scan
    guards the selected entry only (O(1) on the clean path): when it is NaN,
    a :class:`~repro.exceptions.NumericalDegradationWarning` is issued, NaN
    entries are masked to ``-inf`` and the argmax is retaken.
    """
    if first_improvement:
        improving = gains > threshold
        if feasible is not None:
            improving &= feasible
        hits = np.argwhere(improving)
        if hits.shape[0] == 0:
            return None
        i, j = hits[0]
        return int(incoming[i]), int(outgoing[j]), float(gains[i, j])
    if feasible is not None:
        gains = np.where(feasible, gains, -np.inf)
    flat = int(np.argmax(gains))
    i, j = divmod(flat, outgoing.size)
    best = float(gains[i, j])
    if math.isnan(best):
        warnings.warn(
            "swap scan found NaN gains; masking them and rescanning",
            NumericalDegradationWarning,
            stacklevel=2,
        )
        gains = np.where(np.isnan(gains), -np.inf, gains)
        flat = int(np.argmax(gains))
        i, j = divmod(flat, outgoing.size)
        best = float(gains[i, j])
    if not best > threshold:
        return None
    return int(incoming[i]), int(outgoing[j]), best


def best_swap_scan(
    weights: np.ndarray,
    matrix: np.ndarray,
    tradeoff: float,
    margins: np.ndarray,
    incoming: np.ndarray,
    outgoing: np.ndarray,
    *,
    feasible: Optional[np.ndarray] = None,
    threshold: float = 0.0,
    first_improvement: bool = False,
) -> Optional[Tuple[Element, Element, float]]:
    """One vectorized best-swap scan; ``None`` when no swap beats ``threshold``.

    ``incoming`` are candidates outside ``S`` and ``outgoing`` members of
    ``S``; ``feasible`` is an optional boolean matrix of allowed swaps (all
    allowed when omitted).  A swap must *strictly* exceed ``threshold`` to be
    returned, matching the reference loop's acceptance rule.  With
    ``first_improvement`` the scan returns the first admissible improving swap
    in row-major (incoming-then-outgoing) order instead of the best one.
    """
    if incoming.size == 0 or outgoing.size == 0:
        return None
    gains = swap_gain_matrix(weights, matrix, tradeoff, margins, incoming, outgoing)
    return best_swap_scan_from_gains(
        gains,
        incoming,
        outgoing,
        feasible=feasible,
        threshold=threshold,
        first_improvement=first_improvement,
    )


def arrival_swap_gains(
    weights: np.ndarray,
    matrix: np.ndarray,
    tradeoff: float,
    element: Element,
    members: Sequence[Element],
) -> np.ndarray:
    """Streaming arrival rule: gains of swapping ``element`` for each member.

    Computes ``φ(S − out + element) − φ(S)`` for every ``out`` in ``members``
    from the O(p²) submatrix alone (no O(n) state), preserving the streaming
    algorithm's O(p) memory footprint.
    """
    sel = np.asarray(members, dtype=int)
    row = matrix[element, sel]
    internal = matrix[np.ix_(sel, sel)].sum(axis=1)
    d_new = row.sum()
    return (weights[element] - weights[sel]) + tradeoff * ((d_new - row) - internal)


def removal_gain_state(quality: SetFunction, selected: Iterable[Element],
                       outgoing: Element):
    """Gain state for ``S − outgoing`` plus the base gain ``f_v(S − v)``.

    The one identity behind every protocol-backed swap evaluation (local
    search scans, streaming arrivals):

    ``f(S − v + u) − f(S) = f_u(S − v) − f_v(S − v) = gains(u, state) − base``

    so callers get the quality part of any swap against ``outgoing`` from a
    single batched-gains call.  Returns ``(state, base)``.
    """
    state = quality.gain_state(set(selected) - {outgoing})
    base = float(quality.gains((outgoing,), state)[0])
    return state, base


def matroid_swap_vectorized(matroid: Matroid) -> bool:
    """Whether the matroid family implements the closed-form
    :meth:`~repro.matroids.base.Matroid.swap_feasibility` rule the vectorized
    swap scans mask with."""
    probe = matroid.swap_feasibility(
        frozenset(), np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    )
    return probe is not None


def swap_kernel_supported(objective, matroid: Matroid) -> bool:
    """Whether the *modular* best-swap scan can run vectorized for this pairing.

    True when the metric is matrix-backed, the quality modular, and the
    matroid family implements the closed-form feasibility rule.  Non-modular
    quality on a matrix-backed metric takes the submodular kernel scan in
    :mod:`repro.core.local_search` instead (quality gains batched through the
    marginal-gain protocol rather than read from a weight vector).
    """
    if matrix_fast_path(objective) is None:
        return False
    return matroid_swap_vectorized(matroid)
