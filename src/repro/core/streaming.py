"""Streaming (incremental) max-sum diversification.

Section 2 of the paper discusses Minack et al.'s incremental approach for
very large data sets: the input arrives as a stream and a near-optimal
diverse set must be available at any point without storing the whole stream.
The paper's own dynamic-update machinery (Section 6) uses the same single
swap primitive, so this module provides the natural streaming algorithm built
on it:

* keep at most ``p`` elements;
* when a new element arrives and the solution is not full, add it;
* otherwise consider replacing the element whose removal costs least — the
  arriving element is swapped in if the best such swap strictly improves the
  objective (optionally by a relative margin, which bounds the total number
  of swaps logarithmically).

Only the current solution and the arriving element are ever inspected, so the
memory footprint is O(p) plus the distance/quality oracles, and each arrival
costs O(p) marginal evaluations.

Two fast paths serve the arrival rule.  With a matrix-backed metric and
modular quality, all ``p`` candidate swaps are one O(p²) submatrix kernel
(:func:`repro.core.kernels.arrival_swap_gains`).  Otherwise the quality side
runs on the stateful batched marginal-gain protocol: one removal state per
solution member (``f(S − v + e) − f(S) = f_e(S − v) − f_v(S − v)``), built
lazily and reused across arrivals until the solution changes, plus a
maintained vector of internal distance marginals — so an arrival costs O(p)
single-candidate gains calls instead of 2·p value-oracle evaluations with
their O(p²) dispersion recomputations.  (The removal states add O(state)
memory per member — e.g. O(n) for facility location — traded for the
per-arrival oracle work.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro._types import Element
from repro.core import kernels
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.functions.base import GainState
from repro.utils.deadline import Deadline, mark_interrupted


@dataclass
class StreamingDiversifier:
    """Maintain a diverse set of at most ``p`` elements over a stream.

    Parameters
    ----------
    objective:
        The combined objective ``φ``.  The objective's universe must contain
        every element that will ever arrive (elements are integer indices).
    p:
        Maximum solution size.
    improvement_margin:
        Relative improvement a swap must achieve to be accepted, as a fraction
        of the current objective value.  0 accepts any strict improvement;
        a positive margin (e.g. 0.01) bounds the number of swaps over the
        whole stream by ``O(log_{1+margin}(φ_max / φ_min))``.
    """

    objective: Objective
    p: int
    improvement_margin: float = 0.0
    _selected: List[Element] = field(default_factory=list, init=False, repr=False)
    _value: float = field(default=0.0, init=False, repr=False)
    _arrivals: int = field(default=0, init=False, repr=False)
    _swaps: int = field(default=0, init=False, repr=False)
    _fast: Optional[tuple] = field(default=None, init=False, repr=False)
    # Protocol-path state (non-kernel instances), all maintained lazily and
    # invalidated when the solution changes:
    _qstate: Optional[GainState] = field(default=None, init=False, repr=False)
    _removal: Dict[Element, Tuple[GainState, float]] = field(
        default_factory=dict, init=False, repr=False
    )
    _margins: Optional[Dict[Element, float]] = field(
        default=None, init=False, repr=False
    )
    _interrupted: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.p < 1:
            raise InvalidParameterError("p must be at least 1")
        if self.improvement_margin < 0:
            raise InvalidParameterError("improvement_margin must be non-negative")
        # Resolve the kernel fast path once, not per arrival: the weight and
        # matrix views are live under in-place mutation, and re-deriving the
        # weight vector of view-less modular families would cost O(n) oracle
        # calls per arrival.
        self._fast = kernels.matrix_fast_path(self.objective)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def solution(self) -> frozenset:
        """The current solution."""
        return frozenset(self._selected)

    @property
    def solution_value(self) -> float:
        """``φ`` of the current solution."""
        return self._value

    @property
    def arrivals(self) -> int:
        """Number of elements processed so far."""
        return self._arrivals

    @property
    def swaps(self) -> int:
        """Number of replacements performed so far."""
        return self._swaps

    # ------------------------------------------------------------------
    # Protocol-path helpers (lazy, invalidated on solution changes)
    # ------------------------------------------------------------------
    def _distance_row(self, element: Element) -> np.ndarray:
        """Distances from ``element`` to the current solution, in list order."""
        matrix = self.objective.metric.matrix_view()
        if matrix is not None:
            return np.asarray(
                matrix[element, np.asarray(self._selected, dtype=int)], dtype=float
            )
        return self.objective.metric.distances_from(element, self._selected)

    def _ensure_qstate(self) -> GainState:
        if self._qstate is None:
            self._qstate = self.objective.make_quality_state(self._selected)
        return self._qstate

    def _ensure_margins(self) -> Dict[Element, float]:
        if self._margins is None:
            self._margins = {
                v: float(self._distance_row(v).sum()) for v in self._selected
            }
        return self._margins

    def _ensure_removal_states(self) -> Dict[Element, Tuple[GainState, float]]:
        if not self._removal:
            quality = self.objective.quality
            for outgoing in self._selected:
                self._removal[outgoing] = kernels.removal_gain_state(
                    quality, self._selected, outgoing
                )
        return self._removal

    def _append(self, element: Element, row: Optional[np.ndarray]) -> None:
        """Grow the solution, updating the maintained state incrementally."""
        if self._qstate is not None:
            self.objective.quality.push(self._qstate, element)
        if self._margins is not None and row is not None:
            for i, member in enumerate(self._selected):
                self._margins[member] += float(row[i])
            self._margins[element] = float(row.sum())
        self._selected.append(element)
        self._removal.clear()

    def _invalidate(self) -> None:
        self._qstate = None
        self._margins = None
        self._removal.clear()

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def process(self, element: Element) -> bool:
        """Process one arriving element; return ``True`` if the solution changed."""
        if element < 0 or element >= self.objective.n:
            raise InvalidParameterError(
                f"element {element} is outside the objective's universe"
            )
        self._arrivals += 1
        if element in self._selected:
            return False
        if len(self._selected) < self.p:
            if self._fast is None:
                row = self._distance_row(element)
                gain = float(
                    self.objective.quality.gains((element,), self._ensure_qstate())[0]
                ) + self.objective.tradeoff * float(row.sum())
            else:
                row = None
                gain = self.objective.marginal(element, frozenset(self._selected))
            self._append(element, row)
            self._value += gain
            return True
        # Full: find the best single replacement for the arriving element.
        best_gain = self.improvement_margin * abs(self._value)
        best_outgoing: Optional[Element] = None
        if self._fast is not None:
            # All p candidate swaps in one O(p²) submatrix computation.
            weights, matrix = self._fast
            gains = kernels.arrival_swap_gains(
                weights, matrix, self.objective.tradeoff, element, self._selected
            )
            best_idx = int(np.argmax(gains))
            if gains[best_idx] > best_gain:
                best_gain = float(gains[best_idx])
                best_outgoing = self._selected[best_idx]
        else:
            # Protocol path: quality side from the cached removal states
            # (f_e(S − v) − f_v(S − v)), distance side from the arriving
            # row and the maintained internal marginals — O(p) gains calls
            # per arrival, no value-oracle or O(p²) dispersion recompute.
            quality = self.objective.quality
            tradeoff = self.objective.tradeoff
            row = self._distance_row(element)
            arriving_total = float(row.sum())
            margins = self._ensure_margins()
            removal = self._ensure_removal_states()
            for i, outgoing in enumerate(self._selected):
                state, base = removal[outgoing]
                quality_gain = float(quality.gains((element,), state)[0]) - base
                distance_gain = (arriving_total - float(row[i])) - margins[outgoing]
                gain = quality_gain + tradeoff * distance_gain
                if gain > best_gain:
                    best_gain = gain
                    best_outgoing = outgoing
        if best_outgoing is None:
            return False
        self._selected.remove(best_outgoing)
        self._selected.append(element)
        self._invalidate()
        self._value += best_gain
        self._swaps += 1
        return True

    def process_stream(
        self,
        elements: Iterable[Element],
        *,
        deadline: Union[None, float, Deadline] = None,
    ) -> "StreamingDiversifier":
        """Process a whole iterable of arrivals (returns ``self`` for chaining).

        With a ``deadline`` the loop polls
        :meth:`~repro.utils.deadline.Deadline.expired` before each arrival
        and stops processing on expiry; the solution kept so far stays valid
        (it always has at most ``p`` elements) and unprocessed arrivals are
        simply dropped, as a real stream would drop them under back-pressure.
        Whether the stream was cut short is reported by
        :attr:`interrupted`.
        """
        deadline = Deadline.coerce(deadline)
        self._interrupted = False
        for element in elements:
            if deadline is not None and deadline.expired():
                self._interrupted = True
                break
            self.process(element)
        return self

    @property
    def interrupted(self) -> bool:
        """Whether the last :meth:`process_stream` hit its deadline."""
        return self._interrupted

    def result(self, *, elapsed_seconds: float = 0.0) -> SolverResult:
        """Package the current solution as a :class:`SolverResult`."""
        return build_result(
            self.objective,
            self._selected,
            list(self._selected),
            algorithm="streaming",
            iterations=self._arrivals,
            elapsed_seconds=elapsed_seconds,
            metadata={
                "swaps": self._swaps,
                "improvement_margin": self.improvement_margin,
                "p": self.p,
            },
        )


def streaming_diversify(
    objective: Objective,
    p: int,
    arrival_order: Optional[Iterable[Element]] = None,
    *,
    improvement_margin: float = 0.0,
    candidates: Optional[Iterable[Element]] = None,
    deadline: Union[None, float, Deadline] = None,
) -> SolverResult:
    """One-shot convenience wrapper: stream the universe through a StreamingDiversifier.

    Parameters
    ----------
    objective:
        The combined objective.
    p:
        Maximum solution size.
    arrival_order:
        The order in which elements arrive (defaults to index order; with a
        candidate pool, to the pool's order).
    improvement_margin:
        Forwarded to :class:`StreamingDiversifier`.
    candidates:
        Optional candidate pool, routed through the restriction layer: the
        stream runs over the re-indexed sub-instance and the result is lifted
        back.  Every arrival must belong to the pool.
    deadline:
        Optional cooperative wall-clock budget (seconds or a
        :class:`~repro.utils.deadline.Deadline`).  Checked before each
        arrival; on expiry the remaining arrivals are dropped and the
        solution built so far is returned with
        ``metadata["interrupted"] = True``.
    """
    if candidates is not None:
        restriction = objective.restrict(candidates)
        sub_order = (
            None if arrival_order is None else restriction.to_local(arrival_order)
        )
        result = streaming_diversify(
            restriction.objective,
            p,
            sub_order,
            improvement_margin=improvement_margin,
            deadline=deadline,
        )
        return restriction.lift(result)

    started = time.perf_counter()
    deadline = Deadline.coerce(deadline)
    order: Tuple[Element, ...] = (
        tuple(range(objective.n)) if arrival_order is None else tuple(arrival_order)
    )
    engine = StreamingDiversifier(objective, p, improvement_margin=improvement_margin)
    engine.process_stream(order, deadline=deadline)
    result = engine.result(elapsed_seconds=time.perf_counter() - started)
    if engine.interrupted:
        mark_interrupted(result.metadata, deadline, "streaming_arrivals")
    return result
