"""Exact solvers for small instances.

Tables 1, 3, 4 and 8 report the true optimum ``OPT`` for moderate universes so
the observed approximation factors can be computed.  Two methods are
provided:

* ``method="enumerate"`` — plain enumeration of all ``C(n, p)`` subsets (or of
  all bases under a matroid constraint).
* ``method="branch_and_bound"`` (default for a cardinality constraint) — a
  depth-first search that maintains the running objective incrementally and
  prunes with an admissible upper bound.  The bound uses submodularity of the
  quality function (``f(S ∪ T) − f(S) ≤ Σ_{u∈T} f_u(S)``) plus a dispersion cap
  ``λ·C(r, 2)·d_max``, so it is exact for the monotone submodular quality
  functions the paper considers.

Both are exponential in the worst case and guarded by an explicit work limit.
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb
from typing import Iterable, List, Optional

import numpy as np

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError, SolverError
from repro.functions.modular import ZeroFunction
from repro.matroids.base import Matroid
from repro.metrics.base import Metric

#: Refuse plain enumeration beyond this many candidate subsets.
DEFAULT_SUBSET_LIMIT = 5_000_000

#: Refuse branch-and-bound beyond this many search nodes.
DEFAULT_NODE_LIMIT = 50_000_000


def _enumerate_cardinality(
    objective: Objective, pool: List[Element], p: int, subset_limit: int
):
    total = comb(len(pool), p)
    if total > subset_limit:
        raise SolverError(
            f"brute force over {total} subsets exceeds the limit {subset_limit}"
        )
    best_set = frozenset()
    best_value = objective.value(frozenset())
    examined = 0
    for combo in combinations(sorted(pool), p):
        value = objective.value(combo)
        examined += 1
        if value > best_value:
            best_value = value
            best_set = frozenset(combo)
    return best_set, best_value, examined


def _branch_and_bound_cardinality(
    objective: Objective, pool: List[Element], p: int, node_limit: int
):
    """Depth-first search with incremental evaluation and an admissible bound."""
    quality = objective.quality
    lam = objective.tradeoff
    matrix = objective.metric.to_matrix()
    n = objective.n

    modular_weights: Optional[np.ndarray] = None
    if quality.is_modular:
        modular_weights = np.array(
            [quality.marginal(u, frozenset()) for u in range(n)], dtype=float
        )

    # Order candidates by singleton attractiveness so good solutions are found
    # early and the incumbent prunes aggressively.
    def singleton_score(u: Element) -> float:
        weight = (
            modular_weights[u]
            if modular_weights is not None
            else quality.marginal(u, frozenset())
        )
        return weight + lam * float(matrix[u, pool].sum()) / max(len(pool), 1)

    candidates = sorted(pool, key=singleton_score, reverse=True)
    index_of = {u: i for i, u in enumerate(candidates)}
    dmax = (
        float(matrix[np.ix_(candidates, candidates)].max())
        if len(candidates) > 1
        else 0.0
    )

    # Seed the incumbent with the greedy solution (cheap, usually excellent).
    from repro.core.greedy import greedy_diversify

    seed = greedy_diversify(objective, p)
    best_value = seed.objective_value
    best_set = set(seed.selected)

    margins = np.zeros(n, dtype=float)  # d_u(S) for the current partial S
    chosen: List[Element] = []
    examined = 0

    def quality_marginal(u: Element, members: frozenset) -> float:
        if modular_weights is not None:
            return float(modular_weights[u])
        return quality.marginal(u, members)

    def dfs(start: int, value: float, quality_value: float) -> None:
        nonlocal best_value, best_set, examined
        examined += 1
        if examined > node_limit:
            raise SolverError(
                f"branch-and-bound exceeded the node limit {node_limit}"
            )
        remaining_slots = p - len(chosen)
        if remaining_slots == 0:
            if value > best_value:
                best_value = value
                best_set = set(chosen)
            return
        tail = candidates[start:]
        if len(tail) < remaining_slots:
            return
        members = frozenset(chosen)
        # Admissible upper bound: best `remaining_slots` single-element gains
        # (valid for submodular quality) plus the largest possible pairwise
        # dispersion among the yet-to-be-chosen elements.
        gains = np.array(
            [quality_marginal(u, members) + lam * margins[u] for u in tail],
            dtype=float,
        )
        if remaining_slots < len(gains):
            top = np.partition(gains, -remaining_slots)[-remaining_slots:]
        else:
            top = gains
        bound = (
            value
            + float(top.sum())
            + lam * (remaining_slots * (remaining_slots - 1) / 2.0) * dmax
        )
        if bound <= best_value + 1e-12:
            return
        for offset, u in enumerate(tail):
            position = start + offset
            if len(candidates) - position < remaining_slots:
                break
            gain = quality_marginal(u, members) + lam * margins[u]
            chosen.append(u)
            margins_delta = matrix[u]
            margins[:] += margins_delta
            dfs(position + 1, value + gain, quality_value + gain - lam * margins[u])
            margins[:] -= margins_delta
            chosen.pop()

    dfs(0, 0.0, 0.0)
    return frozenset(best_set), best_value, examined


def exact_diversify(
    objective: Objective,
    p: Optional[int] = None,
    *,
    matroid: Optional[Matroid] = None,
    candidates: Optional[Iterable[Element]] = None,
    method: str = "auto",
    subset_limit: int = DEFAULT_SUBSET_LIMIT,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> SolverResult:
    """Exact maximization of ``φ`` under a cardinality or matroid constraint.

    Exactly one of ``p`` and ``matroid`` must be supplied.  ``method`` is one
    of ``"auto"``, ``"branch_and_bound"`` and ``"enumerate"``; matroid
    constraints always use enumeration of bases.  A ``candidates`` pool is
    routed through the restriction layer: the optimum of the induced
    sub-instance is returned (under a matroid, bases of the *restricted*
    matroid — the maximal independent sets inside the pool — are enumerated).
    """
    if (p is None) == (matroid is None):
        raise InvalidParameterError("supply exactly one of p and matroid")
    if method not in ("auto", "branch_and_bound", "enumerate"):
        raise InvalidParameterError(f"unknown exact method {method!r}")
    if matroid is not None and matroid.n != objective.n:
        raise InvalidParameterError("matroid and objective universes differ")
    if candidates is not None:
        restriction = objective.restrict(candidates)
        sub_matroid = (
            matroid.restrict(restriction.candidates) if matroid is not None else None
        )
        result = exact_diversify(
            restriction.objective,
            p,
            matroid=sub_matroid,
            method=method,
            subset_limit=subset_limit,
            node_limit=node_limit,
        )
        return restriction.lift(result)

    started = time.perf_counter()
    pool: List[Element] = list(range(objective.n))

    if p is not None:
        p = min(p, len(pool))
        if p < 0:
            raise InvalidParameterError("p must be non-negative")
        use_bnb = method == "branch_and_bound" or (
            method == "auto" and p >= 2 and len(pool) > p
        )
        if use_bnb:
            best_set, _, examined = _branch_and_bound_cardinality(
                objective, pool, p, node_limit
            )
        else:
            best_set, _, examined = _enumerate_cardinality(
                objective, pool, p, subset_limit
            )
        metadata = {
            "p": p,
            "examined": examined,
            "method": "branch_and_bound" if use_bnb else "enumerate",
        }
    else:
        assert matroid is not None
        rank = matroid.rank()
        total = comb(len(pool), rank) if rank <= len(pool) else 0
        if total > subset_limit:
            raise SolverError(
                f"brute force over {total} candidate bases exceeds the limit {subset_limit}"
            )
        best_set = frozenset()
        best_value = objective.value(frozenset())
        examined = 0
        for basis in matroid.bases():
            value = objective.value(basis)
            examined += 1
            if value > best_value:
                best_value = value
                best_set = basis
        metadata = {"rank": rank, "examined": examined, "method": "enumerate_bases"}

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        best_set,
        sorted(best_set),
        algorithm="exact",
        iterations=metadata["examined"],
        elapsed_seconds=elapsed,
        metadata=metadata,
    )


def exact_dispersion(
    metric: Metric,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
    method: str = "auto",
    subset_limit: int = DEFAULT_SUBSET_LIMIT,
) -> SolverResult:
    """Exact max-sum p-dispersion (the ``f ≡ 0`` special case)."""
    objective = Objective(ZeroFunction(metric.n), metric, tradeoff=1.0)
    return exact_diversify(
        objective, p, candidates=candidates, method=method, subset_limit=subset_limit
    )
