"""Greedy B — the paper's non-oblivious greedy algorithm (Section 4).

The algorithm builds ``S`` one vertex at a time, always adding the element
maximizing the potential

``φ'_u(S) = ½·f_u(S) + λ·d_u(S)``

rather than the true objective marginal ``φ_u(S) = f_u(S) + λ·d_u(S)``.
Halving the quality marginal is what makes Theorem 1's charging argument work
and yields a 2-approximation for any normalized monotone submodular ``f``
under a cardinality constraint.

Two starting rules are provided:

* ``start="potential"`` (default) — the algorithm exactly as stated in the
  paper: the first element also maximizes ``φ'_u(∅) = ½·f_u(∅)``.
* ``start="best_pair"`` — the "improved Greedy B" of Table 3, which seeds the
  solution with the pair maximizing ``f({x, y}) + λ·d(x, y)``.

The optional ``oblivious=True`` switch replaces the potential by the true
marginal; it is *not* covered by Theorem 1 and exists for the ablation bench.
"""

from __future__ import annotations

import time

import numpy as np

from typing import Callable, Iterable, List, Optional, Set, Union

from repro._types import Element
from repro.core import kernels
from repro.core.checkpoint import SolveCheckpoint, universe_fingerprint
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.obs.instrument import maybe_span, maybe_start_span
from repro.obs.trace import Trace
from repro.utils.deadline import Deadline, mark_interrupted
from repro.utils.validation import check_cardinality

#: Number of top stale candidates re-evaluated per CELF round.  Batching
#: amortizes the fixed cost of a gains call; the overshoot per selection step
#: is bounded by one batch.
_LAZY_BATCH = 8


def _best_pair(objective: Objective, candidates: Iterable[Element]) -> tuple:
    """Return the candidate pair maximizing ``f({x,y}) + λ·d(x,y)``."""
    pool = list(candidates)
    fast = kernels.matrix_fast_path(objective)
    if fast is not None and len(pool) >= 2:
        weights, matrix = fast
        move = kernels.pair_argmax(weights, matrix, objective.tradeoff, pool)
        assert move is not None
        return move[0], move[1]
    best = None
    best_value = -float("inf")
    for i, x in enumerate(pool):
        for y in pool[i + 1 :]:
            value = objective.pair_value(x, y)
            if value > best_value:
                best_value = value
                best = (x, y)
    if best is None:
        raise InvalidParameterError("best-pair start needs at least two candidates")
    return best


def greedy_diversify(
    objective: Objective,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
    start: str = "potential",
    oblivious: bool = False,
    lazy: Optional[bool] = None,
    deadline: Union[None, float, Deadline] = None,
    checkpoint_every: Optional[int] = None,
    on_checkpoint: Optional[Callable[[SolveCheckpoint], None]] = None,
    resume_from: Optional[SolveCheckpoint] = None,
    trace: Optional[Trace] = None,
) -> SolverResult:
    """Run Greedy B for the cardinality-constrained problem.

    Parameters
    ----------
    objective:
        The combined objective ``φ``.
    p:
        Target cardinality ``|S| = p`` (values larger than the candidate pool
        are clamped to the pool size).
    candidates:
        Optional subset of the universe to select from (defaults to all
        elements).  Routed through the restriction layer
        (:meth:`~repro.core.objective.Objective.restrict`): the greedy runs
        on the re-indexed sub-instance — kernels included — and the result is
        lifted back.  Used by the LETOR experiments to restrict to the top-k
        documents of a query.
    start:
        ``"potential"`` (the paper's algorithm) or ``"best_pair"`` (the
        improved variant of Table 3).
    oblivious:
        When ``True``, greedily maximize the true marginal ``φ_u(S)`` instead
        of the non-oblivious potential.  Provided for the ablation study; the
        2-approximation proof does not apply to it.
    lazy:
        CELF lazy evaluation for non-modular quality (the modular path has
        its own O(1)-per-candidate kernel and ignores this flag).  Default
        ``None`` enables laziness exactly when the quality declares itself
        submodular — the property that makes stale quality gains valid upper
        bounds.  ``False`` forces the plain batched evaluation (every
        candidate re-scored each iteration); ``True`` forces laziness for
        functions whose submodularity the caller vouches for.
    deadline:
        Optional cooperative wall-clock budget (seconds or a
        :class:`~repro.utils.deadline.Deadline`).  Checked once per selection
        step; on expiry the greedy stops and returns its best-so-far prefix —
        always a feasible set, since every greedy prefix is — with
        ``metadata["interrupted"] = True`` and ``metadata["phase"]``.
    checkpoint_every, on_checkpoint:
        Emit a pickle-safe :class:`~repro.core.checkpoint.SolveCheckpoint`
        (the selection order so far) to ``on_checkpoint`` after every
        ``checkpoint_every`` selections (default 1 when only the callback is
        given).
    resume_from:
        A ``kind="greedy"`` checkpoint to resume from: its order is replayed
        as the selection prefix, after which the greedy continues normally.
        Greedy is deterministic given a prefix, so an interrupted-and-resumed
        run selects the same set as an uninterrupted one.
    trace:
        Optional :class:`~repro.obs.trace.Trace`: records a ``gain_state``
        span (tracker / batched marginal-gain state construction) and a
        ``greedy_rounds`` span carrying iteration and CELF evaluation counts.

    Returns
    -------
    SolverResult
        The selected set, its objective decomposition and the insertion order.
    """
    if candidates is not None:
        restriction = objective.restrict(candidates)
        result = greedy_diversify(
            restriction.objective,
            p,
            start=start,
            oblivious=oblivious,
            lazy=lazy,
            deadline=deadline,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            resume_from=resume_from,
            trace=trace,
        )
        return restriction.lift(result)

    started = time.perf_counter()
    deadline = Deadline.coerce(deadline)
    n = objective.n
    p = check_cardinality(p, n) if p <= n else n
    if start not in ("potential", "best_pair"):
        raise InvalidParameterError(f"unknown start rule {start!r}")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise InvalidParameterError("checkpoint_every must be at least 1")
    if on_checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 1

    algorithm = "greedy_b_oblivious" if oblivious else "greedy_b"
    if start == "best_pair":
        algorithm += "_bestpair"

    selected: Set[Element] = set()
    order: List[Element] = []
    with maybe_span(trace, "gain_state", kind="tracker"):
        tracker = objective.make_tracker()
    remaining = set(range(n))
    iterations = 0
    interrupted = False

    fingerprint = universe_fingerprint("solve", "greedy", n, objective.tradeoff)
    seeded: List[Element] = []
    if resume_from is not None:
        resume_from.require("greedy", n, fingerprint=fingerprint)
        seeded = list(resume_from.order)[:p]
    elif start == "best_pair" and p >= 2 and n >= 2:
        if deadline is not None and deadline.expired():
            interrupted = True
        else:
            seeded = list(_best_pair(objective, range(n)))
            iterations += 1
    for element in seeded:
        selected.add(element)
        order.append(element)
        tracker.add(element)
        remaining.discard(element)

    quality = objective.quality
    quality_scale = 1.0 if oblivious else 0.5
    penalty = np.full(n, -np.inf)
    penalty[list(remaining)] = 0.0

    # Fast path for modular quality: the potential of every candidate is
    # ``scale·w(u) + λ·d_u(S)`` with the distance marginals maintained by the
    # tracker, so each iteration is one vectorized argmax over the universe
    # (the O(np) total running time discussed after Theorem 1).  The marginals
    # are read through the tracker's copy-free view and already-selected
    # elements carry a -inf penalty, so no O(n) allocation happens inside the
    # loop.  (Candidate pools never reach this code: they are re-indexed into
    # a dense sub-universe by the restriction layer above.)
    scaled_weights = None
    if quality.is_modular:
        scaled_weights = quality_scale * kernels.modular_weights(quality)
        scores = np.empty(n, dtype=float)
    else:
        # Submodular fast path: quality gains served by the stateful batched
        # marginal-gain protocol, distance gains by the tracker view.  With
        # ``use_lazy`` the loop is CELF: quality gains computed in iteration
        # one stay valid *upper bounds* afterwards (submodularity), so each
        # later iteration re-evaluates candidates lazily in upper-bound order
        # until the argmax is fresh — typically a handful of evaluations
        # instead of all of ``remaining``.  The distance term is supermodular
        # (stale values would *under*-estimate), so the upper-bound vector is
        # rebuilt every iteration from the exact tracker marginals; only the
        # quality term is ever stale.
        use_lazy = lazy if lazy is not None else quality.declares_submodular
        with maybe_span(trace, "gain_state", kind="quality"):
            state = objective.make_quality_state(selected)
        quality_gains = np.zeros(n, dtype=float)
        eval_iteration = np.full(n, 0, dtype=np.int64)
        margins = tracker.marginals_view()
        selection_step = 0
        evaluations = 0
        evaluations_after_first = 0
        candidates_after_first = 0

    # Explicit-start span (the loop has `break` exits and the CELF counters
    # only exist at the end); ``finish`` is idempotent, so the no-trace path
    # costs one attribute check per solve.
    rounds = maybe_start_span(trace, "greedy_rounds")
    while len(selected) < p and remaining and not interrupted:
        if deadline is not None and deadline.expired():
            interrupted = True
            break
        if scaled_weights is not None:
            np.multiply(tracker.marginals_view(), objective.tradeoff, out=scores)
            scores += scaled_weights
            scores += penalty
            best_element = int(np.argmax(scores))
        else:
            selection_step += 1
            if selection_step > 1:
                candidates_after_first += len(remaining)
            if not use_lazy or selection_step == 1:
                remaining_idx = np.nonzero(np.isfinite(penalty))[0]
                quality_gains[remaining_idx] = objective.quality_gains(
                    remaining_idx, state
                )
                eval_iteration[remaining_idx] = selection_step
                evaluations += remaining_idx.size
                if selection_step > 1:
                    evaluations_after_first += remaining_idx.size
            scores = quality_scale * quality_gains + objective.tradeoff * margins
            scores += penalty
            while True:
                best_element = int(np.argmax(scores))
                if eval_iteration[best_element] == selection_step:
                    break
                # Re-evaluate the top stale candidates in one protocol batch:
                # the stale argmax is guaranteed to be among them (it is the
                # global score maximum), so every round makes progress, and
                # batching amortizes the per-call cost of tiny gains batches.
                stale_scores = np.where(
                    eval_iteration < selection_step, scores, -np.inf
                )
                if n > _LAZY_BATCH:
                    top = np.argpartition(stale_scores, -_LAZY_BATCH)[-_LAZY_BATCH:]
                else:
                    top = np.arange(n)
                top = top[np.isfinite(stale_scores[top])]
                fresh = quality.gains(top, state)
                quality_gains[top] = fresh
                eval_iteration[top] = selection_step
                evaluations += top.size
                evaluations_after_first += top.size
                scores[top] = (
                    quality_scale * fresh + objective.tradeoff * margins[top]
                )
            quality.push(state, best_element)
        selected.add(best_element)
        order.append(best_element)
        tracker.add(best_element)
        remaining.discard(best_element)
        penalty[best_element] = -np.inf
        iterations += 1
        if on_checkpoint is not None and len(order) % checkpoint_every == 0:
            on_checkpoint(
                SolveCheckpoint(
                    kind="greedy",
                    n=n,
                    p=p,
                    order=tuple(order),
                    elapsed_seconds=time.perf_counter() - started,
                    metadata={"algorithm": algorithm},
                    fingerprint=fingerprint,
                )
            )

    rounds.set(iterations=iterations, interrupted=interrupted)
    if scaled_weights is None:
        rounds.set(lazy=use_lazy, quality_evaluations=evaluations)
    rounds.finish()

    metadata = {"start": start, "oblivious": oblivious, "p": p}
    if resume_from is not None:
        metadata["resumed_at"] = len(seeded)
    if interrupted:
        mark_interrupted(metadata, deadline, "greedy_selection")
    if scaled_weights is None:
        if getattr(state, "degraded", False):
            # A numerical fast path (e.g. the log-det Cholesky state) broke
            # down mid-solve and fell back to oracle gains; surface it.
            metadata["degraded"] = True
            metadata["degradation"] = "quality_gain_state"
        metadata["celf"] = {
            "lazy": use_lazy,
            "quality_evaluations": evaluations,
            "evaluations_after_first": evaluations_after_first,
            "celf_fraction": (
                evaluations_after_first / candidates_after_first
                if candidates_after_first
                else 0.0
            ),
        }

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm=algorithm,
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata=metadata,
    )
