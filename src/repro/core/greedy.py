"""Greedy B — the paper's non-oblivious greedy algorithm (Section 4).

The algorithm builds ``S`` one vertex at a time, always adding the element
maximizing the potential

``φ'_u(S) = ½·f_u(S) + λ·d_u(S)``

rather than the true objective marginal ``φ_u(S) = f_u(S) + λ·d_u(S)``.
Halving the quality marginal is what makes Theorem 1's charging argument work
and yields a 2-approximation for any normalized monotone submodular ``f``
under a cardinality constraint.

Two starting rules are provided:

* ``start="potential"`` (default) — the algorithm exactly as stated in the
  paper: the first element also maximizes ``φ'_u(∅) = ½·f_u(∅)``.
* ``start="best_pair"`` — the "improved Greedy B" of Table 3, which seeds the
  solution with the pair maximizing ``f({x, y}) + λ·d(x, y)``.

The optional ``oblivious=True`` switch replaces the potential by the true
marginal; it is *not* covered by Theorem 1 and exists for the ablation bench.
"""

from __future__ import annotations

import time

import numpy as np

from typing import Iterable, List, Optional, Set

from repro._types import Element
from repro.core import kernels
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_cardinality


def _best_pair(objective: Objective, candidates: Iterable[Element]) -> tuple:
    """Return the candidate pair maximizing ``f({x,y}) + λ·d(x,y)``."""
    pool = list(candidates)
    fast = kernels.matrix_fast_path(objective)
    if fast is not None and len(pool) >= 2:
        weights, matrix = fast
        move = kernels.pair_argmax(weights, matrix, objective.tradeoff, pool)
        assert move is not None
        return move[0], move[1]
    best = None
    best_value = -float("inf")
    for i, x in enumerate(pool):
        for y in pool[i + 1 :]:
            value = objective.pair_value(x, y)
            if value > best_value:
                best_value = value
                best = (x, y)
    if best is None:
        raise InvalidParameterError("best-pair start needs at least two candidates")
    return best


def greedy_diversify(
    objective: Objective,
    p: int,
    *,
    candidates: Optional[Iterable[Element]] = None,
    start: str = "potential",
    oblivious: bool = False,
) -> SolverResult:
    """Run Greedy B for the cardinality-constrained problem.

    Parameters
    ----------
    objective:
        The combined objective ``φ``.
    p:
        Target cardinality ``|S| = p`` (values larger than the candidate pool
        are clamped to the pool size).
    candidates:
        Optional subset of the universe to select from (defaults to all
        elements).  Routed through the restriction layer
        (:meth:`~repro.core.objective.Objective.restrict`): the greedy runs
        on the re-indexed sub-instance — kernels included — and the result is
        lifted back.  Used by the LETOR experiments to restrict to the top-k
        documents of a query.
    start:
        ``"potential"`` (the paper's algorithm) or ``"best_pair"`` (the
        improved variant of Table 3).
    oblivious:
        When ``True``, greedily maximize the true marginal ``φ_u(S)`` instead
        of the non-oblivious potential.  Provided for the ablation study; the
        2-approximation proof does not apply to it.

    Returns
    -------
    SolverResult
        The selected set, its objective decomposition and the insertion order.
    """
    if candidates is not None:
        restriction = objective.restrict(candidates)
        result = greedy_diversify(
            restriction.objective, p, start=start, oblivious=oblivious
        )
        return restriction.lift(result)

    started = time.perf_counter()
    n = objective.n
    p = check_cardinality(p, n) if p <= n else n
    if start not in ("potential", "best_pair"):
        raise InvalidParameterError(f"unknown start rule {start!r}")

    algorithm = "greedy_b_oblivious" if oblivious else "greedy_b"
    if start == "best_pair":
        algorithm += "_bestpair"

    selected: Set[Element] = set()
    order: List[Element] = []
    tracker = objective.make_tracker()
    remaining = set(range(n))
    iterations = 0

    def marginal_of(u: Element, members: frozenset) -> float:
        if oblivious:
            return objective.marginal(u, members, tracker=tracker)
        return objective.potential_marginal(u, members, tracker=tracker)

    if start == "best_pair" and p >= 2 and n >= 2:
        x, y = _best_pair(objective, range(n))
        for element in (x, y):
            selected.add(element)
            order.append(element)
            tracker.add(element)
            remaining.discard(element)
        iterations += 1

    # Fast path for modular quality: the potential of every candidate is
    # ``scale·w(u) + λ·d_u(S)`` with the distance marginals maintained by the
    # tracker, so each iteration is one vectorized argmax over the universe
    # (the O(np) total running time discussed after Theorem 1).  The marginals
    # are read through the tracker's copy-free view and already-selected
    # elements carry a -inf penalty, so no O(n) allocation happens inside the
    # loop.  (Candidate pools never reach this code: they are re-indexed into
    # a dense sub-universe by the restriction layer above.)
    scaled_weights = None
    if objective.quality.is_modular:
        quality_scale = 1.0 if oblivious else 0.5
        scaled_weights = quality_scale * kernels.modular_weights(objective.quality)
        penalty = np.full(objective.n, -np.inf)
        penalty[list(remaining)] = 0.0
        scores = np.empty(objective.n, dtype=float)

    while len(selected) < p and remaining:
        if scaled_weights is not None:
            np.multiply(tracker.marginals_view(), objective.tradeoff, out=scores)
            scores += scaled_weights
            scores += penalty
            best_element = int(np.argmax(scores))
        else:
            best_element = None
            best_gain = -float("inf")
            members = frozenset(selected)
            for u in remaining:
                gain = marginal_of(u, members)
                if gain > best_gain or (
                    gain == best_gain and (best_element is None or u < best_element)
                ):
                    best_gain = gain
                    best_element = u
            assert best_element is not None
        selected.add(best_element)
        order.append(best_element)
        tracker.add(best_element)
        remaining.discard(best_element)
        if scaled_weights is not None:
            penalty[best_element] = -np.inf
        iterations += 1

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        selected,
        order,
        algorithm=algorithm,
        iterations=iterations,
        elapsed_seconds=elapsed,
        metadata={"start": start, "oblivious": oblivious, "p": p},
    )
