"""Knapsack-constrained max-sum diversification (a paper "future work" item).

Section 8 of the paper asks whether the results extend to a knapsack
constraint ``Σ_{u ∈ S} c(u) ≤ B`` and points to Sviridenko's partial-
enumeration greedy for monotone submodular maximization under a knapsack.
This module provides the natural adaptation to the diversification objective:

* :func:`knapsack_greedy` — a cost-benefit greedy on the non-oblivious
  potential ``φ'_u(S) = ½f_u(S) + λ·d_u(S)``: each step adds the feasible
  element maximizing either the raw potential or the potential per unit cost
  (both candidate rules are tried and the better resulting set is returned,
  the standard trick that avoids the bad corner cases of either rule alone).
* ``partial_enumeration_size`` — optionally enumerate every feasible seed set
  of up to that size (Sviridenko's technique) and complete each seed
  greedily, returning the best completion.  Size 3 gives the classical
  guarantee for pure submodular maximization; here it is a strong heuristic
  whose quality is tracked against the exact optimum in the benchmark.
* :func:`exact_knapsack_diversify` — brute-force optimum for small instances.

No constant-factor guarantee is claimed for the combined objective (that is
precisely the paper's open question); the benchmark measures the empirical
factors instead.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.exceptions import InvalidParameterError


def _validate_costs(objective: Objective, costs: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(costs), dtype=float)
    if array.shape != (objective.n,):
        raise InvalidParameterError(
            f"costs must have one entry per element ({objective.n}), got {array.shape}"
        )
    if np.any(array < 0):
        raise InvalidParameterError("costs must be non-negative")
    return array


def _greedy_fill(
    objective: Objective,
    costs: np.ndarray,
    budget: float,
    seed_set: Set[Element],
    pool: Sequence[Element],
    *,
    per_unit_cost: bool,
) -> Set[Element]:
    """Greedily extend ``seed_set`` without exceeding the budget."""
    selected = set(seed_set)
    tracker = objective.make_tracker(selected)
    spent = float(costs[list(selected)].sum()) if selected else 0.0
    remaining = [u for u in pool if u not in selected]
    while True:
        best_element = None
        best_score = 0.0
        members = frozenset(selected)
        for u in remaining:
            cost = float(costs[u])
            if spent + cost > budget + 1e-12:
                continue
            gain = objective.potential_marginal(u, members, tracker=tracker)
            if gain <= 0:
                continue
            score = gain / cost if (per_unit_cost and cost > 0) else gain
            if score > best_score:
                best_score = score
                best_element = u
        if best_element is None:
            break
        selected.add(best_element)
        tracker.add(best_element)
        spent += float(costs[best_element])
        remaining.remove(best_element)
    return selected


def knapsack_greedy(
    objective: Objective,
    costs: Sequence[float],
    budget: float,
    *,
    candidates: Optional[Iterable[Element]] = None,
    partial_enumeration_size: int = 0,
) -> SolverResult:
    """Cost-benefit greedy for max-sum diversification under a knapsack constraint.

    Parameters
    ----------
    objective:
        The combined objective ``φ``.
    costs:
        Non-negative cost ``c(u)`` per element.
    budget:
        The knapsack capacity ``B``.
    candidates:
        Optional candidate pool.
    partial_enumeration_size:
        When positive, every feasible seed of up to this many elements is
        enumerated and greedily completed (Sviridenko's partial enumeration);
        0 keeps only the plain greedy completions from the empty seed.
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if partial_enumeration_size < 0:
        raise InvalidParameterError("partial_enumeration_size must be non-negative")
    started = time.perf_counter()
    cost_array = _validate_costs(objective, costs)
    pool: List[Element] = (
        list(range(objective.n))
        if candidates is None
        else list(dict.fromkeys(candidates))
    )
    affordable = [u for u in pool if cost_array[u] <= budget + 1e-12]

    best_set: Set[Element] = set()
    best_value = objective.value(frozenset())
    completions = 0

    def consider(selected: Set[Element]) -> None:
        nonlocal best_set, best_value, completions
        completions += 1
        value = objective.value(selected)
        if value > best_value:
            best_value = value
            best_set = set(selected)

    # Plain greedy from the empty seed with both selection rules.
    for per_unit_cost in (False, True):
        consider(
            _greedy_fill(
                objective,
                cost_array,
                budget,
                set(),
                affordable,
                per_unit_cost=per_unit_cost,
            )
        )

    # Partial enumeration of small seeds, each completed by the cost-benefit rule.
    for seed_size in range(1, partial_enumeration_size + 1):
        for seed in combinations(affordable, seed_size):
            if float(cost_array[list(seed)].sum()) > budget + 1e-12:
                continue
            consider(
                _greedy_fill(
                    objective,
                    cost_array,
                    budget,
                    set(seed),
                    affordable,
                    per_unit_cost=True,
                )
            )

    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        best_set,
        sorted(best_set),
        algorithm="knapsack_greedy"
        if partial_enumeration_size == 0
        else f"knapsack_greedy_enum{partial_enumeration_size}",
        iterations=completions,
        elapsed_seconds=elapsed,
        metadata={
            "budget": float(budget),
            "spent": float(cost_array[list(best_set)].sum()) if best_set else 0.0,
            "partial_enumeration_size": partial_enumeration_size,
        },
    )


def exact_knapsack_diversify(
    objective: Objective,
    costs: Sequence[float],
    budget: float,
    *,
    candidates: Optional[Iterable[Element]] = None,
    subset_limit: int = 2_000_000,
) -> SolverResult:
    """Brute-force optimum under a knapsack constraint (small instances only)."""
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    started = time.perf_counter()
    cost_array = _validate_costs(objective, costs)
    pool: List[Element] = (
        list(range(objective.n))
        if candidates is None
        else list(dict.fromkeys(candidates))
    )
    if 2 ** len(pool) > subset_limit:
        raise InvalidParameterError(
            f"exact knapsack enumeration over 2^{len(pool)} subsets exceeds the limit"
        )
    best_set: Tuple[Element, ...] = ()
    best_value = objective.value(frozenset())
    examined = 0
    # Depth-first enumeration with budget pruning.
    ordered = sorted(pool)

    def dfs(index: int, chosen: List[Element], spent: float) -> None:
        nonlocal best_set, best_value, examined
        examined += 1
        value = objective.value(chosen)
        if value > best_value:
            best_value = value
            best_set = tuple(chosen)
        for i in range(index, len(ordered)):
            u = ordered[i]
            cost = float(cost_array[u])
            if spent + cost > budget + 1e-12:
                continue
            chosen.append(u)
            dfs(i + 1, chosen, spent + cost)
            chosen.pop()

    dfs(0, [], 0.0)
    elapsed = time.perf_counter() - started
    return build_result(
        objective,
        set(best_set),
        sorted(best_set),
        algorithm="exact_knapsack",
        iterations=examined,
        elapsed_seconds=elapsed,
        metadata={"budget": float(budget)},
    )
