"""The max-sum diversification objective ``φ(S) = f(S) + λ·d(S)``.

:class:`Objective` bundles a quality function, a metric and the trade-off
parameter λ, and exposes both the *true* marginal gain

``φ_u(S) = f_u(S) + λ·d_u(S)``

and the paper's *non-oblivious* potential marginal (the quantity Greedy B
maximizes)

``φ'_u(S) = ½·f_u(S) + λ·d_u(S)``.

Keeping the two explicit makes it possible to test Theorem 1's mechanics and
to run the ablation comparing the non-oblivious greedy against the oblivious
one.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.core.kernels import weights_view_of
from repro.functions.base import Candidates, GainState, SetFunction
from repro.metrics.aggregates import (
    MarginalDistanceTracker,
    marginal_distance,
    set_distance,
)
from repro.metrics.base import Metric
from repro.utils.validation import check_finite_array, check_tradeoff


class Objective:
    """The combined quality + dispersion objective of Problem 2.

    Parameters
    ----------
    quality:
        The set function ``f`` (normalized, monotone; submodular for the
        guarantees of Theorems 1 and 2 to apply).
    metric:
        The distance structure ``d``.
    tradeoff:
        The parameter λ ≥ 0 weighting the dispersion term.
    """

    def __init__(self, quality: SetFunction, metric: Metric, tradeoff: float) -> None:
        if quality.n != metric.n:
            raise InvalidParameterError(
                f"quality function covers {quality.n} elements but the metric "
                f"covers {metric.n}"
            )
        self._quality = quality
        self._metric = metric
        self._tradeoff = check_tradeoff("tradeoff", float(tradeoff))
        # O(n) finiteness gate on modular weight views: cheap relative to any
        # solve, and it catches NaN/inf planted in a weight vector that was
        # built outside the validating ModularFunction constructor.  The
        # O(n²) metric arrays are validated by their own constructors.
        weights = weights_view_of(quality)
        if weights is not None:
            check_finite_array("quality weights", weights)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Size of the ground set."""
        return self._metric.n

    @property
    def quality(self) -> SetFunction:
        """The quality function ``f``."""
        return self._quality

    @property
    def metric(self) -> Metric:
        """The metric ``d``."""
        return self._metric

    @property
    def tradeoff(self) -> float:
        """The trade-off parameter λ."""
        return self._tradeoff

    # ------------------------------------------------------------------
    # Set evaluations
    # ------------------------------------------------------------------
    def quality_value(self, subset: Iterable[Element]) -> float:
        """``f(S)``."""
        return self._quality.value(subset)

    def dispersion_value(self, subset: Iterable[Element]) -> float:
        """``d(S)`` (the unweighted sum of pairwise distances)."""
        return set_distance(self._metric, subset)

    def value(self, subset: Iterable[Element]) -> float:
        """``φ(S) = f(S) + λ·d(S)``."""
        members = frozenset(subset)
        return (
            self.quality_value(members)
            + self._tradeoff * self.dispersion_value(members)
        )

    # ------------------------------------------------------------------
    # Marginals
    # ------------------------------------------------------------------
    def marginal(
        self,
        element: Element,
        subset: Iterable[Element],
        *,
        tracker: Optional[MarginalDistanceTracker] = None,
    ) -> float:
        """True marginal ``φ_u(S) = f_u(S) + λ·d_u(S)``.

        When a :class:`MarginalDistanceTracker` synchronized with ``subset``
        is supplied, the distance part is read in O(1).
        """
        members = frozenset(subset)
        if element in members:
            return 0.0
        if tracker is not None:
            distance_gain = tracker.marginal(element)
        else:
            distance_gain = marginal_distance(self._metric, element, members)
        return self._quality.marginal(element, members) + self._tradeoff * distance_gain

    def potential_marginal(
        self,
        element: Element,
        subset: Iterable[Element],
        *,
        tracker: Optional[MarginalDistanceTracker] = None,
    ) -> float:
        """Non-oblivious potential ``φ'_u(S) = ½·f_u(S) + λ·d_u(S)`` (Section 4)."""
        members = frozenset(subset)
        if element in members:
            return 0.0
        if tracker is not None:
            distance_gain = tracker.marginal(element)
        else:
            distance_gain = marginal_distance(self._metric, element, members)
        return (
            0.5 * self._quality.marginal(element, members)
            + self._tradeoff * distance_gain
        )

    # ------------------------------------------------------------------
    # Batched marginal gains (the submodular fast path)
    # ------------------------------------------------------------------
    def make_quality_state(
        self, initial: Optional[Iterable[Element]] = None
    ) -> GainState:
        """Incremental gain state for the quality term (see ``SetFunction.gain_state``)."""
        return self._quality.gain_state(initial if initial is not None else ())

    def quality_gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        """Batched quality marginals ``[f_u(S)]`` against ``state``'s set.

        The quality-side counterpart of reading the tracker's marginal view
        for the distance term; the greedy fast path combines the two into
        ``scale·f_u(S) + λ·d_u(S)`` itself.
        """
        return self._quality.gains(candidates, state)

    def swap_gain(
        self, subset: Iterable[Element], incoming: Element, outgoing: Element
    ) -> float:
        """``φ(S - outgoing + incoming) - φ(S)`` (the local-search move value)."""
        members = frozenset(subset)
        if outgoing not in members or incoming in members:
            raise InvalidParameterError(
                "swap_gain requires outgoing ∈ S and incoming ∉ S"
            )
        swapped = (members - {outgoing}) | {incoming}
        return self.value(swapped) - self.value(members)

    # ------------------------------------------------------------------
    # Restriction (sub-universe views)
    # ------------------------------------------------------------------
    def restrict(self, candidates: Iterable[Element]) -> "Restriction":
        """Build the query-scoped sub-instance on ``candidates``.

        Returns a :class:`~repro.core.restriction.Restriction` bundling the
        re-indexed objective (weight slice + submatrix view, same λ) with the
        index maps and result lifting every algorithm's ``candidates=`` path
        routes through.
        """
        from repro.core.restriction import Restriction

        return Restriction(self, candidates)

    # ------------------------------------------------------------------
    # Helpers for algorithms
    # ------------------------------------------------------------------
    def make_tracker(
        self, initial: Optional[Iterable[Element]] = None
    ) -> MarginalDistanceTracker:
        """Create a marginal-distance tracker bound to this objective's metric."""
        return MarginalDistanceTracker(self._metric, initial)

    def pair_value(self, x: Element, y: Element) -> float:
        """``f({x, y}) + λ·d(x, y)`` — the pair score used by initializations."""
        return (
            self._quality.value({x, y})
            + self._tradeoff * self._metric.distance(x, y)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Objective(n={self.n}, tradeoff={self._tradeoff}, "
            f"quality={type(self._quality).__name__}, "
            f"metric={type(self._metric).__name__})"
        )
