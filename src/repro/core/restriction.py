"""First-class sub-universe restrictions (query-scoped candidate pools).

A production diversifier serves queries against one shared corpus: the metric
(and the quality weights) cover the whole universe, but each query selects
from its own candidate pool.  :class:`Restriction` is the single mechanism
every algorithm uses to honor a ``candidates=`` argument:

1. build the index-remapped sub-instance — a weight-vector slice for modular
   quality (:meth:`~repro.functions.base.SetFunction.restrict`), a submatrix
   view of the distance matrix (:meth:`~repro.metrics.base.Metric.restrict`,
   copy-free for uniform-stride pools), and, when a matroid constraint is in
   play, the restricted matroid (:meth:`~repro.matroids.base.Matroid.restrict`);
2. run the unmodified algorithm — including its vectorized kernel path — on
   the sub-instance;
3. :meth:`Restriction.lift` the result back into the corpus' indices.

This replaces the previous per-algorithm hand-rolled candidate-pool loops,
which diverged (``solve(..., algorithm="local_search", candidates=...)``
silently ignored the pool) and kept the kernels operating on the full
universe.  :mod:`repro.core.batch` builds the multi-query front end on top.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro._types import Element
from repro.core.objective import Objective
from repro.core.result import SolverResult
from repro.exceptions import InvalidParameterError
from repro.metrics.base import Metric
from repro.utils.validation import check_candidate_pool

__all__ = ["Restriction"]


class Restriction:
    """An index-remapped view of an :class:`Objective` on a candidate pool.

    Parameters
    ----------
    objective:
        The full-universe objective.
    candidates:
        The candidate pool.  Deduplicated in first-seen order; local element
        ``i`` of the restricted instance is ``candidates[i]``.
    metric:
        Optional pre-built sub-metric to use instead of
        ``objective.metric.restrict(candidates)``.  The caller asserts it is
        the restriction of the base metric onto the pool — the sharded
        core-set solver passes a lazy slice or a chunk-materialized block
        here so huge universes never pay the default restriction's cost.

    Attributes
    ----------
    objective:
        The restricted objective (quality slice + submatrix metric, same λ).
        Subset values are preserved: for any local set ``S``,
        ``restricted.value(S) == base.value(to_global(S))``.
    """

    def __init__(
        self,
        objective: Objective,
        candidates: Iterable[Element],
        *,
        metric: Optional[Metric] = None,
    ) -> None:
        idx = check_candidate_pool(candidates, objective.n)
        self._base = objective
        self._globals: Tuple[Element, ...] = tuple(idx.tolist())
        # Built lazily: the batched front end never needs the global→local
        # map, and building one dict per query is measurable overhead.
        self._locals: Optional[Dict[Element, Element]] = None
        if metric is None:
            metric = objective.metric.restrict(self._globals)
        elif metric.n != len(self._globals):
            raise InvalidParameterError(
                f"supplied sub-metric covers {metric.n} elements but the pool "
                f"has {len(self._globals)}"
            )
        self._objective = Objective(
            objective.quality.restrict(self._globals),
            metric,
            objective.tradeoff,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def base(self) -> Objective:
        """The unrestricted objective."""
        return self._base

    @property
    def objective(self) -> Objective:
        """The restricted (re-indexed) objective the algorithms run on."""
        return self._objective

    @property
    def candidates(self) -> Tuple[Element, ...]:
        """The pool in canonical order: local ``i`` ↔ global ``candidates[i]``."""
        return self._globals

    @property
    def n(self) -> int:
        """Size of the restricted universe."""
        return len(self._globals)

    @property
    def is_identity(self) -> bool:
        """Whether the pool is the full universe in index order."""
        return self._globals == tuple(range(self._base.n))

    # ------------------------------------------------------------------
    # Index translation
    # ------------------------------------------------------------------
    def to_local(self, elements: Iterable[Element]) -> List[Element]:
        """Map global indices into the restricted universe (pool members only)."""
        if self._locals is None:
            self._locals = {g: i for i, g in enumerate(self._globals)}
        try:
            return [self._locals[int(e)] for e in elements]
        except KeyError as error:
            # Chain the KeyError: a caller debugging a bad pool wants to see
            # which lookup failed, not a bare re-raise.
            raise InvalidParameterError(
                f"element {error.args[0]} is not in the candidate pool"
            ) from error

    def to_global(self, elements: Iterable[Element]) -> List[Element]:
        """Map local (restricted) indices back into the corpus' universe."""
        return [self._globals[e] for e in elements]

    # ------------------------------------------------------------------
    # Result lifting
    # ------------------------------------------------------------------
    def lift(self, result: SolverResult) -> SolverResult:
        """Re-express a sub-instance result in the corpus' indices.

        The objective / quality / dispersion values are unchanged — a
        restriction preserves subset values — so only the element indices are
        remapped: ``selected``, ``order``, and the element-bearing metadata
        entries (``pairs`` from Greedy A, ``swaps`` traces from local search).
        The pool itself is recorded under ``metadata["candidates"]``.
        """
        g = self._globals
        metadata = dict(result.metadata)
        if "pairs" in metadata:
            metadata["pairs"] = [(g[u], g[v]) for u, v in metadata["pairs"]]
        if "swaps" in metadata and not isinstance(metadata["swaps"], int):
            metadata["swaps"] = [
                (g[u], g[v], gain) for u, v, gain in metadata["swaps"]
            ]
        metadata["candidates"] = self._globals
        return SolverResult(
            selected=frozenset(g[e] for e in result.selected),
            order=tuple(g[e] for e in result.order),
            objective_value=result.objective_value,
            quality_value=result.quality_value,
            dispersion_value=result.dispersion_value,
            algorithm=result.algorithm,
            iterations=result.iterations,
            elapsed_seconds=result.elapsed_seconds,
            metadata=metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Restriction(n={self.n} of {self._base.n})"
