"""Solver result container.

Every algorithm in :mod:`repro.core` returns a :class:`SolverResult` so the
experiment harness, the examples and downstream users handle a single shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Sequence, Tuple

from repro._types import Element


@dataclass(frozen=True)
class SolverResult:
    """The outcome of one diversification run.

    Attributes
    ----------
    selected:
        The chosen subset ``S``.
    order:
        The order in which elements entered the final solution (greedy
        insertion order; for local search, the final basis in the order it
        stabilized).  ``len(order) == len(selected)``.
    objective_value:
        ``φ(S) = f(S) + λ·d(S)``.
    quality_value:
        ``f(S)``.
    dispersion_value:
        ``d(S)`` (unweighted).
    algorithm:
        Human-readable algorithm name (``"greedy_b"``, ``"greedy_a"``,
        ``"local_search"``, ``"exact"``, ...).
    iterations:
        Number of iterations / swaps / subsets examined, as appropriate.
    elapsed_seconds:
        Wall-clock time of the run.
    metadata:
        Algorithm-specific extras (e.g. the swap trace of local search).
    """

    selected: FrozenSet[Element]
    order: Tuple[Element, ...]
    objective_value: float
    quality_value: float
    dispersion_value: float
    algorithm: str
    iterations: int = 0
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """``|S|``."""
        return len(self.selected)

    @property
    def elapsed_ms(self) -> float:
        """Wall-clock time in milliseconds (the unit the paper reports)."""
        return self.elapsed_seconds * 1000.0

    def approximation_factor(self, optimal_value: float) -> float:
        """``OPT / ALG`` — the observed approximation factor ``AF`` of Section 7.

        Returns 1.0 when both values are (numerically) zero, and ``inf`` when
        the algorithm value is zero but the optimum is positive.
        """
        if abs(self.objective_value) < 1e-12:
            return 1.0 if abs(optimal_value) < 1e-12 else float("inf")
        return optimal_value / self.objective_value

    def sorted_elements(self) -> Sequence[Element]:
        """The selected elements in ascending index order."""
        return tuple(sorted(self.selected))

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: |S|={self.size} φ={self.objective_value:.4f} "
            f"(f={self.quality_value:.4f}, d={self.dispersion_value:.4f}) "
            f"in {self.elapsed_ms:.1f} ms"
        )


def build_result(
    objective,
    selected,
    order,
    *,
    algorithm: str,
    iterations: int = 0,
    elapsed_seconds: float = 0.0,
    metadata: Dict[str, Any] | None = None,
) -> SolverResult:
    """Assemble a :class:`SolverResult`, evaluating the objective components."""
    members = frozenset(selected)
    return SolverResult(
        selected=members,
        order=tuple(order),
        objective_value=objective.value(members),
        quality_value=objective.quality_value(members),
        dispersion_value=objective.dispersion_value(members),
        algorithm=algorithm,
        iterations=iterations,
        elapsed_seconds=elapsed_seconds,
        metadata=dict(metadata or {}),
    )
