"""Unified solver facade.

:func:`solve` is the single entry point most users need: give it a quality
function, a metric, a trade-off and a constraint (a cardinality ``p`` or a
:class:`~repro.matroids.base.Matroid`), and it validates the inputs, picks an
appropriate algorithm and returns a :class:`~repro.core.result.SolverResult`.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Union

from repro._types import Element
from repro.core.baselines import gollapudi_sharma_greedy, matching_diversify
from repro.core.checkpoint import SolveCheckpoint
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.local_search import LocalSearchConfig, local_search_diversify
from repro.core.mmr import mmr_select
from repro.core.objective import Objective
from repro.core.result import SolverResult
from repro.exceptions import InvalidParameterError, SolverError
from repro.functions.base import SetFunction
from repro.matroids.base import Matroid
from repro.matroids.uniform import UniformMatroid
from repro.metrics.base import Metric
from repro.obs.instrument import (
    SOLVE_SECONDS,
    SOLVES,
    maybe_span,
    maybe_start_span,
    phase_timings,
)
from repro.obs.trace import Trace
from repro.utils.deadline import Deadline

#: Algorithms accepted by :func:`solve`.
ALGORITHMS = (
    "auto",
    "greedy",
    "greedy_best_pair",
    "greedy_a",
    "greedy_a_improved",
    "matching",
    "mmr",
    "local_search",
    "exact",
)


def solve(
    quality: SetFunction,
    metric: Metric,
    *,
    tradeoff: float,
    p: Optional[int] = None,
    matroid: Optional[Matroid] = None,
    algorithm: str = "auto",
    candidates: Optional[Iterable[Element]] = None,
    local_search_config: Optional[LocalSearchConfig] = None,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    shard_workers: Optional[int] = None,
    deadline_s: Union[None, float, Deadline] = None,
    checkpoint_every: Optional[int] = None,
    on_checkpoint: Optional[Callable[[SolveCheckpoint], None]] = None,
    resume_from: Optional[SolveCheckpoint] = None,
    trace: Optional[Trace] = None,
) -> SolverResult:
    """Solve a max-sum diversification instance.

    Parameters
    ----------
    quality, metric, tradeoff:
        The instance ``(f, d, λ)``.
    p:
        Cardinality constraint (mutually exclusive with ``matroid``).
    matroid:
        General matroid constraint (mutually exclusive with ``p``).
    algorithm:
        One of :data:`ALGORITHMS`.  ``"auto"`` picks Greedy B for a
        cardinality constraint and local search for a matroid constraint —
        the two algorithms the paper proves 2-approximations for.
    candidates:
        Optional candidate pool restriction (the query-scoped sub-universe).
        Honored by **every** algorithm, including ``local_search`` and the
        matroid-constrained path: the instance (and the matroid, when one is
        given) is restricted through
        :class:`~repro.core.restriction.Restriction` /
        :meth:`~repro.matroids.base.Matroid.restrict`, the algorithm runs on
        the re-indexed sub-instance, and the result is lifted back into the
        original universe's indices (the pool is recorded under
        ``result.metadata["candidates"]``).
    local_search_config:
        Configuration forwarded to the local search.
    shards, shard_size, shard_workers:
        When either of ``shards`` / ``shard_size`` is given, the instance is
        solved through the sharded core-set pipeline
        (:func:`~repro.core.sharding.solve_sharded`): the universe is
        partitioned, each shard solved independently on lazy / per-shard
        state (optionally across ``shard_workers`` threads), and
        ``algorithm`` runs on the union of the shard winners.  This is the
        path for universes too large to materialize O(n²) distances;
        cardinality constraints only.
    deadline_s:
        Optional cooperative wall-clock budget in seconds (or a pre-built
        :class:`~repro.utils.deadline.Deadline` to share one clock across
        calls).  Every algorithm polls it at loop boundaries and, on expiry,
        stops and returns its best-so-far **feasible** solution instead of
        raising; ``result.metadata["interrupted"]`` is ``True`` and
        ``result.metadata["phase"]`` names the stage that was cut short.
    checkpoint_every, on_checkpoint:
        Periodic checkpointing for the greedy and sharded paths: a
        pickle-safe :class:`~repro.core.checkpoint.SolveCheckpoint` is passed
        to ``on_checkpoint`` after every ``checkpoint_every`` units of
        progress (greedy selections, or solved shards).
    resume_from:
        A checkpoint from a previous (interrupted) run of the same instance;
        the solve replays it and continues.  Only the greedy and sharded
        paths support resuming — other algorithms raise
        :class:`~repro.exceptions.InvalidParameterError`.
    trace:
        Optional :class:`~repro.obs.trace.Trace`.  When given, the solve
        records nested spans for its phases (restriction, gain-state build,
        greedy rounds; per-shard solves and the final core-set stage on the
        sharded path), ``result.metadata["timings"]`` carries the compact
        per-phase breakdown, and ``trace.export(path)`` writes Chrome-trace
        JSON viewable in Perfetto.  The default (``None``) keeps every
        instrumented path at no-op cost.

    Returns
    -------
    SolverResult
    """
    if algorithm not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if (p is None) == (matroid is None):
        raise InvalidParameterError("supply exactly one of p and matroid")

    if shards is not None or shard_size is not None:
        if matroid is not None:
            raise InvalidParameterError(
                "sharded solving supports cardinality constraints only; "
                "matroid constraints need the unsharded path"
            )
        from repro.core.sharding import solve_sharded

        return solve_sharded(
            quality,
            metric,
            tradeoff=tradeoff,
            p=p,
            shards=shards,
            shard_size=shard_size,
            algorithm=algorithm,
            candidates=candidates,
            max_workers=shard_workers,
            local_search_config=local_search_config,
            deadline=deadline_s,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            resume_from=resume_from,
            trace=trace,
        )

    deadline = Deadline.coerce(deadline_s)
    objective = Objective(quality, metric, tradeoff)
    if matroid is not None and matroid.n != objective.n:
        raise InvalidParameterError(
            f"matroid covers {matroid.n} elements but the objective covers "
            f"{objective.n}"
        )

    started = time.perf_counter()
    root = maybe_start_span(trace, "solve", algorithm=algorithm, n=objective.n)
    try:
        if candidates is not None:
            with maybe_span(trace, "restrict") as restrict_span:
                restriction = objective.restrict(candidates)
                restrict_span.set(pool=restriction.n)
            sub_matroid = (
                matroid.restrict(restriction.candidates)
                if matroid is not None
                else None
            )
            result = restriction.lift(
                _dispatch(
                    restriction.objective,
                    algorithm,
                    p=p,
                    matroid=sub_matroid,
                    local_search_config=local_search_config,
                    deadline=deadline,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    resume_from=resume_from,
                    trace=trace,
                )
            )
        else:
            result = _dispatch(
                objective,
                algorithm,
                p=p,
                matroid=matroid,
                local_search_config=local_search_config,
                deadline=deadline,
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint,
                resume_from=resume_from,
                trace=trace,
            )
    finally:
        root.finish()
    elapsed = time.perf_counter() - started
    if trace is not None:
        result.metadata["timings"] = phase_timings(trace, root.id, total=elapsed)
    if SOLVES.enabled():
        SOLVES.inc(path="plain")
        SOLVE_SECONDS.observe(elapsed, path="plain")
    return result


def _dispatch(
    objective: Objective,
    algorithm: str,
    *,
    p: Optional[int],
    matroid: Optional[Matroid],
    local_search_config: Optional[LocalSearchConfig],
    deadline: Optional[Deadline] = None,
    checkpoint_every: Optional[int] = None,
    on_checkpoint: Optional[Callable[[SolveCheckpoint], None]] = None,
    resume_from: Optional[SolveCheckpoint] = None,
    trace: Optional[Trace] = None,
) -> SolverResult:
    """Run ``algorithm`` on an (already restricted) objective.

    This is the single dispatch point shared by :func:`solve` and the batched
    :func:`repro.core.batch.solve_many` front end; candidate pools never reach
    it — they are re-indexed away by the restriction layer in the callers.
    """
    checkpointing = (
        checkpoint_every is not None
        or on_checkpoint is not None
        or resume_from is not None
    )
    if checkpointing and algorithm not in ("auto", "greedy", "greedy_best_pair"):
        raise InvalidParameterError(
            f"checkpoint/resume is supported by the greedy and sharded paths "
            f"only, not algorithm {algorithm!r}"
        )
    if matroid is not None:
        if algorithm in ("auto", "local_search"):
            return local_search_diversify(
                objective, matroid, config=local_search_config, deadline=deadline
            )
        if algorithm == "exact":
            return exact_diversify(objective, matroid=matroid)
        raise SolverError(
            f"algorithm {algorithm!r} does not support a general matroid constraint; "
            "use 'local_search', 'exact' or 'auto'"
        )

    assert p is not None
    greedy_kwargs = dict(
        deadline=deadline,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
        resume_from=resume_from,
        trace=trace,
    )
    if algorithm == "auto" or algorithm == "greedy":
        return greedy_diversify(objective, p, **greedy_kwargs)
    if algorithm == "greedy_best_pair":
        return greedy_diversify(objective, p, start="best_pair", **greedy_kwargs)
    if algorithm == "greedy_a":
        return gollapudi_sharma_greedy(objective, p)
    if algorithm == "greedy_a_improved":
        return gollapudi_sharma_greedy(objective, p, improved=True)
    if algorithm == "matching":
        return matching_diversify(objective, p)
    if algorithm == "mmr":
        return mmr_select(objective, p)
    if algorithm == "local_search":
        return local_search_diversify(
            objective,
            UniformMatroid(objective.n, p),
            config=local_search_config,
            deadline=deadline,
        )
    if algorithm == "exact":
        return exact_diversify(objective, p)
    raise SolverError(f"unhandled algorithm {algorithm!r}")  # pragma: no cover
