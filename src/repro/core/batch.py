"""Batched multi-query solving over one shared corpus.

A production diversifier is query-scoped: many queries arrive against a single
corpus, each carrying its own candidate pool, while the metric (and the
quality weights) are shared.  :func:`solve_many` prepares the shared state
exactly once —

* the corpus distance matrix (materialized once for oracle metrics, reused as
  a shared view for matrix-backed ones),
* the modular weight vector (derived once even for view-less modular
  families),

— and then solves every query on an index-remapped sub-instance built by the
restriction layer (:class:`~repro.core.restriction.Restriction`).  Per query
the cost is the O(k²) candidate submatrix (a copy-free view for contiguous
pools) plus the solve itself; no query ever pays an O(n²) copy.

Because an oracle-free instance (matrix-backed metric + modular quality)
touches only read-only shared state during a solve, the per-query map can
optionally run on a thread pool (``max_workers``); NumPy releases the GIL in
the submatrix reductions, so large pools see real parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro._types import Element
from repro.core import kernels
from repro.core.local_search import LocalSearchConfig
from repro.core.objective import Objective
from repro.core.restriction import Restriction
from repro.core.result import SolverResult, build_result
from repro.core.solver import ALGORITHMS, _dispatch
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction
from repro.functions.modular import ModularFunction
from repro.matroids.base import Matroid
from repro.metrics.base import Metric
from repro.metrics.matrix import as_distance_matrix
from repro.utils.deadline import Deadline, mark_interrupted

__all__ = ["WindowQuery", "solve_many", "solve_window"]


def solve_many(
    quality: SetFunction,
    metric: Metric,
    queries: Sequence[Iterable[Element]],
    *,
    tradeoff: float,
    p: Optional[int] = None,
    matroid: Optional[Matroid] = None,
    algorithm: str = "auto",
    local_search_config: Optional[LocalSearchConfig] = None,
    materialize: bool = True,
    max_workers: Optional[int] = None,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    deadline_s: Union[None, float, Deadline] = None,
) -> List[SolverResult]:
    """Solve one diversification instance per candidate pool on a shared corpus.

    Parameters
    ----------
    quality, metric, tradeoff:
        The shared corpus instance ``(f, d, λ)``.
    queries:
        One candidate pool per query (iterables of corpus element indices).
        An empty pool yields an empty selection for that query.
    p:
        Cardinality constraint applied to every query (clamped to each pool's
        size).  Mutually exclusive with ``matroid``.
    matroid:
        Corpus-level matroid constraint; it is restricted per pool via
        :meth:`~repro.matroids.base.Matroid.restrict`.
    algorithm:
        One of :data:`~repro.core.solver.ALGORITHMS`, as in
        :func:`~repro.core.solver.solve`.
    local_search_config:
        Forwarded to the local search.
    materialize:
        When ``True`` (default) an oracle metric is materialized into a
        shared :class:`~repro.metrics.matrix.DistanceMatrix` once (O(n²),
        amortized over all queries), so every query runs on the vectorized
        kernel path.  Set to ``False`` for ground sets too large to
        materialize; queries then restrict the oracle pairwise (O(k²) oracle
        calls each) and solve on the loop paths.
    max_workers:
        Optional thread-pool size for the per-query map.  Only honored when
        the shared instance is oracle-free (matrix-backed metric + modular
        quality): those solves read only immutable shared state, and NumPy
        releases the GIL inside the submatrix reductions.  Oracle-backed
        instances run sequentially regardless, since arbitrary user oracles
        make no thread-safety promises.  On the sharded path the budget is
        forwarded to each query's shard map instead.
    shards, shard_size:
        When given, every query is solved through the sharded core-set
        pipeline (:func:`~repro.core.sharding.solve_sharded`) with its pool
        as the candidate set.  The corpus metric is then *not* materialized
        regardless of ``materialize`` — avoiding the O(n²) corpus matrix is
        the point of sharding — so this is the multi-query path for corpora
        beyond matrix scale.
    deadline_s:
        Optional cooperative wall-clock budget shared by the **whole batch**
        (one clock, not one per query).  Queries still running when it
        expires stop early and return their best-so-far solution; queries
        that have not started yet return an *empty* selection with
        ``metadata["interrupted"] = True`` and
        ``metadata["phase"] = "batch_queue"``.  Either way the returned list
        always has one (feasible) result per query.

    Returns
    -------
    list of SolverResult
        One result per query, in query order, expressed in corpus indices;
        each records its pool under ``metadata["candidates"]``.
    """
    if algorithm not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if (p is None) == (matroid is None):
        raise InvalidParameterError("supply exactly one of p and matroid")
    if max_workers is not None and max_workers < 1:
        raise InvalidParameterError("max_workers must be at least 1")

    deadline = Deadline.coerce(deadline_s)
    sharded = shards is not None or shard_size is not None
    if sharded and matroid is not None:
        raise InvalidParameterError(
            "sharded solving supports cardinality constraints only"
        )

    # Shared corpus state, prepared once.
    shared_metric = metric
    if materialize and not sharded and metric.matrix_view() is None:
        shared_metric = as_distance_matrix(metric)
    shared_quality = quality
    if quality.is_modular and kernels.weights_view_of(quality) is None:
        # View-less modular families would pay one O(n) oracle sweep per
        # query inside the kernels; hoist the sweep out of the loop.
        weights = kernels.modular_weights(quality)
        try:
            shared_quality = ModularFunction(weights)
        except InvalidParameterError:
            shared_quality = quality
    objective = Objective(shared_quality, shared_metric, tradeoff)
    if matroid is not None and matroid.n != objective.n:
        raise InvalidParameterError(
            f"matroid covers {matroid.n} elements but the corpus covers "
            f"{objective.n}"
        )

    def solve_one(pool: Iterable[Element]) -> SolverResult:
        if deadline is not None and deadline.expired():
            # The batch budget ran out before this query started: report an
            # empty (trivially feasible) selection rather than blocking.
            result = build_result(
                objective,
                set(),
                [],
                algorithm=algorithm,
                iterations=0,
                elapsed_seconds=0.0,
                metadata=mark_interrupted(
                    {"candidates": tuple(pool)}, deadline, "batch_queue"
                ),
            )
            return result
        if sharded:
            from repro.core.sharding import solve_sharded

            # The outer query map stays sequential for lazy metrics (no
            # matrix fast path), so hand the worker budget to the per-query
            # shard map instead of dropping it.
            return solve_sharded(
                shared_quality,
                shared_metric,
                tradeoff=tradeoff,
                p=p,
                shards=shards,
                shard_size=shard_size,
                algorithm=algorithm,
                candidates=pool,
                max_workers=max_workers,
                local_search_config=local_search_config,
                deadline=deadline,
            )
        restriction = Restriction(objective, pool)
        sub_matroid = (
            matroid.restrict(restriction.candidates) if matroid is not None else None
        )
        result = _dispatch(
            restriction.objective,
            algorithm,
            p=p,
            matroid=sub_matroid,
            local_search_config=local_search_config,
            deadline=deadline,
        )
        return restriction.lift(result)

    pools = [tuple(query) for query in queries]
    oracle_free = kernels.matrix_fast_path(objective) is not None
    if max_workers is not None and max_workers > 1 and oracle_free and len(pools) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            return list(executor.map(solve_one, pools))
    return [solve_one(pool) for pool in pools]


@dataclass
class WindowQuery:
    """One pre-restricted query inside a serving batch window.

    Where :func:`solve_many` takes raw candidate pools and builds a
    :class:`~repro.core.restriction.Restriction` per query, a window query
    carries the restriction *already built* — the serving tier's
    :class:`~repro.serve.PreparedCorpus` keeps hot pools' restrictions in an
    LRU cache, so a cached view is reused across windows instead of being
    rebuilt per request.

    Attributes
    ----------
    restriction:
        The pre-built sub-universe view the query solves on.
    p, matroid:
        The constraint — exactly one must be set.  A matroid must already be
        restricted to the pool (``matroid.n == restriction.n``); ``p`` is
        clamped to the pool size.
    weights:
        Optional per-query modular quality override, in *local* (pool) order
        with one weight per pool element.  The query then solves
        ``f_w + λ·d`` on the same sub-metric, which is how per-request
        relevance scores ride on a shared corpus.
    algorithm, local_search_config:
        As in :func:`~repro.core.solver.solve`.
    deadline:
        Optional per-query budget; the window executor combines it with the
        shared window deadline via :meth:`~repro.utils.deadline.Deadline.earliest`.
    tag:
        Opaque caller payload (request ids, ...), untouched by the solver.
    """

    restriction: Restriction
    p: Optional[int] = None
    matroid: Optional[Matroid] = None
    weights: Optional[np.ndarray] = None
    algorithm: str = "auto"
    local_search_config: Optional[LocalSearchConfig] = None
    deadline: Optional[Deadline] = None
    tag: Any = field(default=None)


def _solve_window_query(
    query: WindowQuery, deadline: Optional[Deadline]
) -> SolverResult:
    """Solve one window query on its pre-restricted view and lift the result."""
    restriction = query.restriction
    objective = restriction.objective
    if query.weights is not None:
        weights = np.asarray(query.weights, dtype=float)
        if weights.shape != (restriction.n,):
            raise InvalidParameterError(
                f"per-query weights cover {weights.shape} elements but the "
                f"pool has {restriction.n}"
            )
        objective = Objective(
            ModularFunction(weights), objective.metric, objective.tradeoff
        )
    p = query.p
    if p is not None:
        if not isinstance(p, int) or isinstance(p, bool) or p < 0:
            raise InvalidParameterError(
                f"cardinality p must be a non-negative integer, got {p!r}"
            )
        p = min(p, restriction.n)
    result = _dispatch(
        objective,
        query.algorithm,
        p=p,
        matroid=query.matroid,
        local_search_config=query.local_search_config,
        deadline=deadline,
    )
    return restriction.lift(result)


def solve_window(
    queries: Sequence[WindowQuery],
    *,
    deadline: Union[None, float, Deadline] = None,
    skip: Optional[Callable[[int], bool]] = None,
    isolate: bool = True,
) -> List[Union[SolverResult, Exception, None]]:
    """Execute one micro-batch window of pre-restricted queries.

    The serving tier's batch-window entry point: the async front end gathers
    concurrent requests into a window, resolves each request's pool to a
    (cached) :class:`~repro.core.restriction.Restriction`, and hands the
    resulting :class:`WindowQuery` list here to run off-loop.

    Parameters
    ----------
    queries:
        The window, in request order.
    deadline:
        Optional budget shared by the whole window.  Each query's effective
        deadline is the *earliest* of this and its own
        :attr:`WindowQuery.deadline`; a query whose effective deadline has
        already expired when its turn comes returns an empty interrupted
        result with ``metadata["phase"] = "window_queue"`` instead of
        running.
    skip:
        Optional predicate called with each query's window index immediately
        before it would run; returning ``True`` skips the query (its slot in
        the returned list is ``None``).  This is the cancellation hook — a
        disconnected client's query is simply never solved, without
        disturbing its co-batched neighbours.
    isolate:
        When ``True`` (default) a query that is invalid or whose solve
        raises keeps the failure to itself: the exception object occupies
        its slot and the remaining queries still run.  ``False`` raises
        immediately (debugging).

    Returns
    -------
    list
        One entry per query, in order: a :class:`SolverResult`, ``None``
        (skipped), or the ``Exception`` the query's solve raised.
    """
    invalid: dict = {}
    for index, query in enumerate(queries):
        error: Optional[Exception] = None
        if (query.p is None) == (query.matroid is None):
            error = InvalidParameterError(
                f"window query {index}: supply exactly one of p and matroid"
            )
        elif query.algorithm not in ALGORITHMS:
            error = InvalidParameterError(
                f"window query {index}: unknown algorithm {query.algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        elif (
            query.matroid is not None
            and query.matroid.n != query.restriction.n
        ):
            error = InvalidParameterError(
                f"window query {index}: matroid covers {query.matroid.n} "
                f"elements but the pool has {query.restriction.n}"
            )
        if error is not None:
            if not isolate:
                raise error
            invalid[index] = error
    shared = Deadline.coerce(deadline)
    results: List[Union[SolverResult, Exception, None]] = []
    for index, query in enumerate(queries):
        if skip is not None and skip(index):
            results.append(None)
            continue
        if index in invalid:
            # An invalid query fails alone; co-batched neighbours still run.
            results.append(invalid[index])
            continue
        effective = Deadline.earliest(query.deadline, shared)
        if effective is not None and effective.expired():
            # The budget ran out while the query sat in the window queue:
            # report an empty (trivially feasible) selection immediately.
            empty = build_result(
                query.restriction.objective,
                set(),
                [],
                algorithm=query.algorithm,
                iterations=0,
                elapsed_seconds=0.0,
                metadata=mark_interrupted({}, effective, "window_queue"),
            )
            results.append(query.restriction.lift(empty))
            continue
        try:
            results.append(_solve_window_query(query, effective))
        except Exception as error:
            if not isolate:
                raise
            results.append(error)
    return results
