"""Core algorithms for max-sum diversification.

This package implements the paper's primary contributions and the baselines
its experiments compare against:

* :class:`~repro.core.objective.Objective` — the combined objective
  ``φ(S) = f(S) + λ·d(S)`` with true and *non-oblivious* marginals.
* :func:`~repro.core.greedy.greedy_diversify` — **Greedy B** (Section 4), the
  vertex greedy driven by the potential ``φ'_u(S) = ½f_u(S) + λd_u(S)``;
  2-approximation for monotone submodular quality under a cardinality
  constraint.
* :func:`~repro.core.dispersion.greedy_dispersion` — the Ravi–Rosenkrantz–Tayi
  vertex greedy for pure max-sum dispersion (Corollary 1's special case).
* :func:`~repro.core.baselines.gollapudi_sharma_greedy` — **Greedy A**, the
  Gollapudi–Sharma reduction to dispersion plus the Hassin–Rubinstein–Tamir
  edge greedy (modular quality only).
* :func:`~repro.core.baselines.matching_diversify` — the matching-based
  (2 − 1/⌈p/2⌉) dispersion algorithm applied through the same reduction.
* :func:`~repro.core.mmr.mmr_select` — the Maximal Marginal Relevance
  heuristic the paper positions its greedy as a principled extension of.
* :func:`~repro.core.local_search.local_search_diversify` — the oblivious
  single-swap local search for an arbitrary matroid constraint (Section 5),
  plus :func:`~repro.core.local_search.refine_with_local_search`, the paper's
  time-budgeted "LS" post-processing of Greedy B.
* :func:`~repro.core.exact.exact_diversify` — brute-force optimum for small
  instances (used to compute the approximation factors of Tables 1, 3, 4, 8).
* :func:`~repro.core.solver.solve` — a single entry point that validates
  inputs and dispatches to the appropriate algorithm.
* :class:`~repro.core.restriction.Restriction` — first-class query-scoped
  sub-universe views; every algorithm's ``candidates=`` argument routes
  through it (index-remapped weight slices, submatrix metric views,
  restricted matroids), so restricted solves run on the same vectorized
  kernels as full-universe ones.
* :func:`~repro.core.batch.solve_many` — the batched multi-query front end:
  many candidate pools against one shared corpus with zero per-query O(n²)
  work, optionally mapped over a thread pool for oracle-free instances.
* :func:`~repro.core.sharding.solve_sharded` — the sharded core-set pipeline
  for universes beyond matrix scale: partition, solve each shard on lazy
  per-shard state (optionally on a thread/process pool), and run the final
  algorithm on the union of shard winners.
"""

from repro.core.baselines import (
    gollapudi_sharma_greedy,
    matching_diversify,
    reduced_metric,
)
from repro.core.batch import solve_many
from repro.core.checkpoint import SolveCheckpoint
from repro.core.dispersion import greedy_dispersion
from repro.core.exact import exact_dispersion, exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.knapsack import exact_knapsack_diversify, knapsack_greedy
from repro.core.local_search import (
    LocalSearchConfig,
    local_search_diversify,
    refine_with_local_search,
)
from repro.core.mmr import mmr_select
from repro.core.restriction import Restriction
from repro.core.sharding import solve_sharded
from repro.core.streaming import StreamingDiversifier, streaming_diversify
from repro.core.objective import Objective
from repro.core.result import SolverResult
from repro.core.solver import solve

__all__ = [
    "Objective",
    "Restriction",
    "SolverResult",
    "SolveCheckpoint",
    "greedy_diversify",
    "greedy_dispersion",
    "gollapudi_sharma_greedy",
    "matching_diversify",
    "reduced_metric",
    "mmr_select",
    "local_search_diversify",
    "refine_with_local_search",
    "LocalSearchConfig",
    "exact_diversify",
    "exact_dispersion",
    "knapsack_greedy",
    "exact_knapsack_diversify",
    "StreamingDiversifier",
    "streaming_diversify",
    "solve",
    "solve_many",
    "solve_sharded",
]
